#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace cgs::sim {

namespace {

/// Descending (time, seq) order: `a` fires strictly after `b`.  The due
/// staging vector is sorted with this so its back() is the global minimum.
inline bool entry_fires_after_impl(Time a_at, std::uint64_t a_seq, Time b_at,
                                   std::uint64_t b_seq) {
  if (a_at != b_at) return a_at > b_at;
  return a_seq > b_seq;
}

}  // namespace

EventQueue::EventQueue(util::Arena* arena) : arena_(arena) {
  for (int i = 0; i < kWheelSize; ++i) near_[i] = kNilNode;
  for (int i = 0; i < kWheelSize; ++i) coarse_[i] = kNilNode;
  // Pre-size the staging vectors so draining a typical bucket is
  // allocation-free from the first event (growth beyond this amortises).
  due_.reserve(256);
  scratch_.reserve(256);
}

EventQueue::~EventQueue() {
  // Destroy any still-pending payloads; the slabs themselves are either
  // heap chunks (freed here) or arena storage (reclaimed wholesale by the
  // arena's owner).
  for (std::uint32_t i = 0; i < slot_count_; ++i) destroy_payload(slot(i));
  if (arena_ == nullptr) {
    for (Slot* chunk : chunks_) delete[] chunk;
    for (WheelNode* chunk : node_chunks_) delete[] chunk;
  }
}

void EventQueue::grow_slots() {
  // Grow the slab by one fixed-address chunk; existing slots never move,
  // so callbacks executing in place stay valid while new events are
  // scheduled. Chunks are threaded onto the free list lowest-index-first
  // to keep slot assignment deterministic.
  Slot* chunk;
  if (arena_ != nullptr) {
    chunk = arena_->allocate_array<Slot>(kChunkSize);
    for (std::uint32_t i = 0; i < kChunkSize; ++i) ::new (chunk + i) Slot();
  } else {
    chunk = new Slot[kChunkSize];
  }
  chunks_.push_back(chunk);
  const std::uint32_t base = slot_count_;
  slot_count_ += kChunkSize;
  for (std::uint32_t i = kChunkSize; i-- > 0;) {
    chunk[i].next_free = free_head_;
    free_head_ = base + i;
  }
}

void EventQueue::grow_nodes() {
  WheelNode* chunk;
  if (arena_ != nullptr) {
    chunk = arena_->allocate_array<WheelNode>(kNodeChunkSize);
    for (std::uint32_t i = 0; i < kNodeChunkSize; ++i) {
      ::new (chunk + i) WheelNode();
    }
  } else {
    chunk = new WheelNode[kNodeChunkSize];
  }
  node_chunks_.push_back(chunk);
  const std::uint32_t base = node_count_;
  node_count_ += kNodeChunkSize;
  for (std::uint32_t i = kNodeChunkSize; i-- > 0;) {
    chunk[i].next = node_free_head_;
    node_free_head_ = base + i;
  }
}

void EventQueue::push_entry(const HeapEntry& e) {
  ++entries_;
  const std::int64_t n1 = near_index(e.at);
  if (entries_ == 1 && n1 - cur_near_ < kWheelSize) {
    // Empty-queue fast path (single-timer and ping-pong workloads): every
    // tier is empty, so stage the entry straight into due_ and advance the
    // wheel cursor past it.  No node traffic, no bitmap scans — push/pop
    // degenerates to a vector push/pop, matching a heap of one.  Jumping
    // cur_near_ is safe precisely because nothing else is stored: the
    // "due_ strictly earlier than the wheels" invariant holds trivially,
    // and later pushes route against the advanced cursor as usual.  The
    // jump is capped at one block span: advancing the cursor past a
    // far-future event would force every subsequent push through
    // due_insert's binary insert until the clock caught up.
    if (n1 >= cur_near_) {
      cur_near_ = n1 + 1;
      cur_block_ = cur_near_ >> kWheelBits;
    }
    due_.push_back(e);
    return;
  }
  if (n1 < cur_near_) {
    // Its near slot was already drained (or it's in the past): stage it
    // directly into the sorted due vector.
    due_insert(e);
    return;
  }
  const std::int64_t b = n1 >> kWheelBits;
  if (b == cur_block_) {
    bucket_push(near_, near_bm_, int(n1 & kWheelMask), e);
    return;
  }
  if (b - cur_block_ < kWheelSize) {
    bucket_push(coarse_, coarse_bm_, int(b & kWheelMask), e);
    return;
  }
  far_push(e);
}

void EventQueue::due_insert(const HeapEntry& e) {
  const auto fires_after = [](const HeapEntry& a, const HeapEntry& b) {
    return entry_fires_after_impl(a.at, a.seq, b.at, b.seq);
  };
  due_.insert(std::lower_bound(due_.begin(), due_.end(), e, fires_after), e);
}

void EventQueue::collect_near(int bucket) {
  std::uint32_t n = near_[bucket];
  near_[bucket] = kNilNode;
  near_bm_[bucket >> 6] &= ~(1ull << (bucket & 63));
  // Simulation traffic is sparse relative to 65.5 µs slots (~1.3 events
  // per drained bucket in the testbed), so the single-node case is the hot
  // path: no scratch staging, no sort.
  {
    const WheelNode& wn = node(n);
    if (wn.next == kNilNode) {
      const HeapEntry e{wn.at, wn.seq, wn.slot, wn.gen};
      free_node(n);
      if (stale(e)) {
        --entries_;  // reaped; a live due entry keeps its count
      } else {
        due_.push_back(e);
      }
      return;
    }
  }
  scratch_.clear();
  do {
    const WheelNode& wn = node(n);
    const std::uint32_t next = wn.next;
    const HeapEntry e{wn.at, wn.seq, wn.slot, wn.gen};
    free_node(n);
    if (stale(e)) {
      --entries_;
    } else {
      scratch_.push_back(e);
    }
    n = next;
  } while (n != kNilNode);
  if (scratch_.empty()) return;
  // Multi-node buckets are short chains; insertion sort beats std::sort's
  // dispatch overhead until well past the sizes seen in practice.
  if (scratch_.size() <= 16) {
    for (std::size_t i = 1; i < scratch_.size(); ++i) {
      const HeapEntry e = scratch_[i];
      std::size_t j = i;
      while (j > 0 && entry_fires_after_impl(e.at, e.seq, scratch_[j - 1].at,
                                             scratch_[j - 1].seq)) {
        scratch_[j] = scratch_[j - 1];
        --j;
      }
      scratch_[j] = e;
    }
  } else {
    std::sort(scratch_.begin(), scratch_.end(),
              [](const HeapEntry& a, const HeapEntry& b) {
                return entry_fires_after_impl(a.at, a.seq, b.at, b.seq);
              });
  }
  // refill_due() only drains buckets while due_ is empty, so this is the
  // whole staging content.
  due_.insert(due_.end(), scratch_.begin(), scratch_.end());
}

void EventQueue::advance_to_block(std::int64_t target) {
  assert(target > cur_block_);
  cur_block_ = target;
  cur_near_ = target << kWheelBits;
  // Far-heap entries the coarse horizon now covers migrate into the
  // wheels (the target block's own entries go straight to the near wheel
  // via push_entry's routing).
  far_drop_stale();
  while (!far_.empty() && block_index(far_[0].at) - cur_block_ < kWheelSize) {
    const HeapEntry e = far_[0];
    far_pop_root();
    --entries_;
    push_entry(e);
    far_drop_stale();
  }
  // Scatter the target block's coarse bucket across the near wheel.
  const int bucket = int(cur_block_ & kWheelMask);
  std::uint32_t n = coarse_[bucket];
  coarse_[bucket] = kNilNode;
  coarse_bm_[bucket >> 6] &= ~(1ull << (bucket & 63));
  while (n != kNilNode) {
    const WheelNode& wn = node(n);
    const std::uint32_t next = wn.next;
    const HeapEntry e{wn.at, wn.seq, wn.slot, wn.gen};
    free_node(n);
    --entries_;
    if (!stale(e)) push_entry(e);
    n = next;
  }
}

void EventQueue::refill_due() {
  if (live_count_ == 0) return;
  while (due_.empty()) {
    if ((cur_near_ >> kWheelBits) == cur_block_) {
      // Find the next non-empty near bucket in the current block.  Bits
      // below cur_near_'s own bucket are impossible: those slots were
      // cleared when drained, and later pushes for them go to due_.
      const int start = int(cur_near_ & kWheelMask);
      int found = -1;
      for (int w = start >> 6; w < kWheelSize / 64; ++w) {
        std::uint64_t word = near_bm_[w];
        if (w == (start >> 6)) word &= ~std::uint64_t(0) << (start & 63);
        if (word != 0) {
          found = (w << 6) + std::countr_zero(word);
          break;
        }
      }
      if (found >= 0) {
        collect_near(found);
        cur_near_ = (cur_block_ << kWheelBits) + found + 1;
        continue;
      }
    }
    // Current block exhausted: jump to the earliest block that still has
    // entries — the nearest non-empty coarse bucket or the far-heap top.
    std::int64_t target = -1;
    for (int w = 0; w < kWheelSize / 64; ++w) {
      std::uint64_t word = coarse_bm_[w];
      while (word != 0) {
        const int b = (w << 6) + std::countr_zero(word);
        word &= word - 1;
        // Bucket b holds the unique block ≡ b (mod 256) in
        // (cur_block_, cur_block_ + 255].
        const std::int64_t delta =
            ((b - cur_block_) & kWheelMask) == 0
                ? kWheelSize
                : ((b - cur_block_) & kWheelMask);
        const std::int64_t blk = cur_block_ + delta;
        if (target < 0 || blk < target) target = blk;
      }
    }
    far_drop_stale();
    if (!far_.empty()) {
      const std::int64_t fb = block_index(far_[0].at);
      if (target < 0 || fb < target) target = fb;
    }
    if (target < 0) {
      // live_count_ > 0 guarantees a live entry exists somewhere.
      assert(false && "live events but no populated tier");
      return;
    }
    advance_to_block(target);
  }
}

EventId EventQueue::push(Time at, EventFn fn) {
  const std::uint32_t i = alloc_slot();
  Slot& s = slot(i);
  ::new (&s.u.fn) EventFn(std::move(fn));
  s.kind = Kind::kCallback;
  push_entry(HeapEntry{at, next_seq_++, i, s.gen});
  ++live_count_;
  return make_id(i, s.gen);
}

void EventQueue::push_packet(Time at, net::PacketSink* sink,
                             net::PacketPtr pkt) {
  const std::uint32_t i = alloc_slot();
  Slot& s = slot(i);
  ::new (&s.u.pe) PacketEvent{std::move(pkt), sink};
  s.kind = Kind::kPacket;
  push_entry(HeapEntry{at, next_seq_++, i, s.gen});
  ++live_count_;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const std::uint32_t i = std::uint32_t(id >> 32) - 1;
  if (i >= slot_count_) return;
  Slot& s = slot(i);
  if (s.gen != std::uint32_t(id)) return;  // already fired or cancelled
  if (i == running_slot_) {
    // Cancelling the in-flight reschedule of the currently executing
    // event: just drop the pending re-push; the slot is released (and its
    // callback destroyed) only after the callback returns.
    resched_pending_ = false;
    return;
  }
  ++s.gen;  // stored entries for this firing are now stale
  free_slot(i);
  --live_count_;
  maybe_compact();
}

EventId EventQueue::reschedule(EventId id, Time at) {
  if (id == kInvalidEventId) return kInvalidEventId;
  const std::uint32_t i = std::uint32_t(id >> 32) - 1;
  if (i >= slot_count_) return kInvalidEventId;
  Slot& s = slot(i);
  if (s.gen != std::uint32_t(id)) return kInvalidEventId;
  if (i == running_slot_) {
    resched_at_ = at;
    resched_seq_ = next_seq_++;
    resched_pending_ = true;
    return id;
  }
  ++s.gen;  // the old stored entry goes stale; lazy deletion reaps it
  push_entry(HeapEntry{at, next_seq_++, i, s.gen});
  maybe_compact();
  return make_id(i, s.gen);
}

EventId EventQueue::reschedule_current(Time at) {
  assert(running_slot_ != kNoSlot &&
         "reschedule_current() outside a run_top() callback");
  resched_at_ = at;
  // The sequence number is claimed now, not at the deferred re-push, so
  // events scheduled later in the same callback order after this one —
  // identical to the old cancel+push timer behaviour.
  resched_seq_ = next_seq_++;
  resched_pending_ = true;
  return make_id(running_slot_, slot(running_slot_).gen);
}

EventQueue::Fired EventQueue::pop() {
  ensure_due();
  assert(!due_.empty() && "pop() on empty queue");
  const HeapEntry top = due_.back();
  due_.pop_back();
  --entries_;
  Slot& s = slot(top.slot);
  ++s.gen;
  --live_count_;
  Fired fired{top.at, EventFn{}};
  if (s.kind == Kind::kCallback) {
    fired.fn = std::move(s.u.fn);
  } else {
    // API parity: hand a typed delivery back as an equivalent closure.
    PacketEvent pe = std::move(s.u.pe);
    fired.fn = [sink = pe.sink, p = std::move(pe.pkt)]() mutable {
      sink->handle_packet(std::move(p));
    };
  }
  free_slot(top.slot);
  return fired;
}

void EventQueue::dispatch_top() {
  const HeapEntry top = due_.back();
  due_.pop_back();
  --entries_;
  Slot& s = slot(top.slot);
  ++s.gen;  // the fired handle is stale from here on (cancel = no-op)
  --live_count_;
  if (s.kind == Kind::kPacket) {
    // Typed delivery: release the slot first so the handler's own pushes
    // can reuse it, then dispatch with no closure machinery at all.
    PacketEvent pe = std::move(s.u.pe);
    free_slot(top.slot);
    pe.sink->handle_packet(std::move(pe.pkt));
    return;
  }
  running_slot_ = top.slot;
  resched_pending_ = false;
  s.u.fn();  // slot storage is chunk-stable; pushes inside never move it
  running_slot_ = kNoSlot;
  if (resched_pending_) {
    // In-place periodic path: the callback stays in its slot untouched.
    push_entry(HeapEntry{resched_at_, resched_seq_, top.slot, s.gen});
    ++live_count_;
  } else {
    free_slot(top.slot);
  }
}

void EventQueue::run_top() {
  ensure_due();
  assert(!due_.empty() && "run_top() on empty queue");
  dispatch_top();
}

std::size_t EventQueue::run_top_batched() {
  ensure_due();
  assert(!due_.empty() && "run_top_batched() on empty queue");
  const HeapEntry top = due_.back();
  Slot& first = slot(top.slot);
  if (first.kind != Kind::kPacket) {
    dispatch_top();
    return 1;
  }
  due_.pop_back();
  --entries_;
  ++first.gen;
  --live_count_;
  net::PacketSink* const sink = first.u.pe.sink;
  const Time at = top.at;
  net::PacketPtr head_pkt = std::move(first.u.pe.pkt);
  free_slot(top.slot);
  // Peek before building a batch: most deliveries are singletons, and a
  // PacketBatch is a ~3/4 KB stack object whose construction would cost
  // more than it saves.  Only materialise it once a second same-(time,
  // sink) event is actually next.
  while (!due_.empty() && stale(due_.back())) {
    due_.pop_back();
    --entries_;
  }
  if (due_.empty() || due_.back().at != at ||
      slot(due_.back().slot).kind != Kind::kPacket ||
      slot(due_.back().slot).u.pe.sink != sink) {
    sink->handle_packet(std::move(head_pkt));
    return 1;
  }
  // Coalesce the maximal run of consecutive (same-time, same-sink) packet
  // events.  This is provably order-preserving: the run is exactly the
  // global (time, seq) successors of the first event, packet events can
  // never be cancelled or rescheduled (push_packet returns no handle), and
  // anything the handlers push claims a later seq — so it fires after the
  // whole run under per-event dispatch too.
  net::PacketBatch batch;
  batch.pkts[0] = std::move(head_pkt);
  batch.count = 1;
  while (batch.count < net::PacketBatch::kCapacity) {
    while (!due_.empty() && stale(due_.back())) {
      due_.pop_back();
      --entries_;
    }
    if (due_.empty() || due_.back().at != at) break;
    const HeapEntry nxt = due_.back();
    Slot& ns = slot(nxt.slot);
    if (ns.kind != Kind::kPacket || ns.u.pe.sink != sink) break;
    due_.pop_back();
    --entries_;
    ++ns.gen;
    --live_count_;
    batch.pkts[batch.count++] = std::move(ns.u.pe.pkt);
    free_slot(nxt.slot);
  }
  sink->handle_batch(batch);
  return batch.count;
}

void EventQueue::far_push(const HeapEntry& e) {
  far_.push_back(e);
  far_sift_up(far_.size() - 1);
}

void EventQueue::far_pop_root() {
  far_[0] = far_.back();
  far_.pop_back();
  if (!far_.empty()) far_sift_down(0);
}

void EventQueue::far_drop_stale() {
  while (!far_.empty() && stale(far_[0])) {
    far_pop_root();
    --entries_;
  }
}

void EventQueue::far_sift_up(std::size_t i) {
  const HeapEntry e = far_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, far_[parent])) break;
    far_[i] = far_[parent];
    i = parent;
  }
  far_[i] = e;
}

void EventQueue::far_sift_down(std::size_t i) {
  const std::size_t n = far_.size();
  const HeapEntry e = far_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(far_[c], far_[best])) best = c;
    }
    if (!before(far_[best], e)) break;
    far_[i] = far_[best];
    i = best;
  }
  far_[i] = e;
}

void EventQueue::maybe_compact() {
  // Lazy deletion can leave the tiers dominated by stale entries under
  // cancel-heavy workloads (RTO timers re-armed per ACK). When stale
  // entries outnumber live ones by 2x, sweep every tier and re-route the
  // survivors in O(n).
  if (entries_ < 256 || entries_ <= 2 * live_count_) return;
  compact();
}

void EventQueue::compact() {
  scratch_.clear();
  for (const HeapEntry& e : due_) {
    if (!stale(e)) scratch_.push_back(e);
  }
  for (const HeapEntry& e : far_) {
    if (!stale(e)) scratch_.push_back(e);
  }
  const auto drain_wheel = [this](std::uint32_t* head, std::uint64_t* bitmap) {
    // Occupancy-bitmap walk: only populated buckets are touched.
    for (int w = 0; w < kWheelSize / 64; ++w) {
      std::uint64_t word = bitmap[w];
      bitmap[w] = 0;
      while (word != 0) {
        const int b = (w << 6) + std::countr_zero(word);
        word &= word - 1;
        std::uint32_t n = head[b];
        head[b] = kNilNode;
        while (n != kNilNode) {
          const WheelNode& wn = node(n);
          const std::uint32_t next = wn.next;
          const HeapEntry e{wn.at, wn.seq, wn.slot, wn.gen};
          free_node(n);
          if (!stale(e)) scratch_.push_back(e);
          n = next;
        }
      }
    }
  };
  drain_wheel(near_, near_bm_);
  drain_wheel(coarse_, coarse_bm_);
  due_.clear();
  far_.clear();
  entries_ = 0;
  // Re-routing keeps each survivor's claimed seq, so the total order (and
  // every golden trace) is untouched; only the storage tier changes.
  for (const HeapEntry& e : scratch_) push_entry(e);
  scratch_.clear();
}

}  // namespace cgs::sim
