#include "sim/event_queue.hpp"

#include <cassert>

namespace cgs::sim {

EventId EventQueue::push(Time at, std::function<void()> fn) {
  const EventId id = next_seq_++;
  heap_.push(Entry{at, id});
  fns_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  auto it = fns_.find(id);
  if (it == fns_.end()) return;
  fns_.erase(it);
  --live_count_;
  // The heap entry stays; pop()/next_time() skip entries with no fn.
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && !fns_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  drop_cancelled();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty() && "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = fns_.find(top.seq);
  Fired fired{top.at, std::move(it->second)};
  fns_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace cgs::sim
