// Umbrella header: the full cgstream public API.
//
//   #include <cgstream.hpp>
//
//   cgs::core::Scenario sc;
//   sc.system = cgs::stream::GameSystem::kStadia;
//   sc.tcp_algo = cgs::tcp::CcAlgo::kBbr;
//   auto result = cgs::core::run_condition(sc, {.runs = 15});
//
// See README.md for the architecture overview and examples/ for usage.
#pragma once

#include "core/aggregate.hpp"    // IWYU pragma: export
#include "core/audit.hpp"        // IWYU pragma: export
#include "core/collectors.hpp"   // IWYU pragma: export
#include "core/error.hpp"        // IWYU pragma: export
#include "core/journal.hpp"      // IWYU pragma: export
#include "core/metrics.hpp"      // IWYU pragma: export
#include "core/ping.hpp"         // IWYU pragma: export
#include "core/proc.hpp"         // IWYU pragma: export
#include "core/report.hpp"       // IWYU pragma: export
#include "core/runner.hpp"       // IWYU pragma: export
#include "core/scenario.hpp"     // IWYU pragma: export
#include "core/sweep.hpp"        // IWYU pragma: export
#include "core/testbed.hpp"      // IWYU pragma: export
#include "core/tracelog.hpp"     // IWYU pragma: export
#include "net/codel.hpp"         // IWYU pragma: export
#include "net/fluid.hpp"         // IWYU pragma: export
#include "net/impairment.hpp"    // IWYU pragma: export
#include "net/link.hpp"          // IWYU pragma: export
#include "net/packet.hpp"        // IWYU pragma: export
#include "net/queue.hpp"         // IWYU pragma: export
#include "net/router.hpp"        // IWYU pragma: export
#include "net/sniffer.hpp"       // IWYU pragma: export
#include "net/topology.hpp"      // IWYU pragma: export
#include "sim/simulator.hpp"     // IWYU pragma: export
#include "sim/timer.hpp"         // IWYU pragma: export
#include "stream/profiles.hpp"   // IWYU pragma: export
#include "stream/receiver.hpp"   // IWYU pragma: export
#include "stream/sender.hpp"     // IWYU pragma: export
#include "svc/job_store.hpp"     // IWYU pragma: export
#include "svc/protocol.hpp"      // IWYU pragma: export
#include "svc/publisher.hpp"     // IWYU pragma: export
#include "svc/server.hpp"        // IWYU pragma: export
#include "tcp/bbr.hpp"           // IWYU pragma: export
#include "tcp/bulk_app.hpp"      // IWYU pragma: export
#include "tcp/cubic.hpp"         // IWYU pragma: export
#include "tcp/reno.hpp"          // IWYU pragma: export
#include "tcp/vegas.hpp"         // IWYU pragma: export
#include "util/csv.hpp"          // IWYU pragma: export
#include "util/filters.hpp"      // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/stats.hpp"        // IWYU pragma: export
#include "util/units.hpp"        // IWYU pragma: export
