#include "svc/job_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/journal.hpp"
#include "core/proc.hpp"
#include "stream/profiles.hpp"
#include "tcp/congestion_control.hpp"
#include "util/crc32.hpp"

namespace cgs::svc {
namespace {

// State-file layout: the 8-byte tag, then u32 version | u64 next_id
// | u32 job_count | per job (u64 id | u8 state | u32 spec_len | spec
// | u32 err_len | err) | u32 crc(everything before).  Same native-endian,
// machine-local conventions as the run journal.
constexpr char kStateTag[8] = {'C', 'G', 'S', 'V', 'S', 'T', '0', '1'};
constexpr std::uint32_t kStateVersion = 1;

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

void put_str(std::vector<unsigned char>& out, const std::string& s) {
  put_u32(out, std::uint32_t(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor over the state file bytes; any overrun flags
/// `bad` and reads return zero/empty (the caller discards the whole file).
struct Cursor {
  const unsigned char* p;
  std::size_t left;
  bool bad = false;

  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (left < sizeof v) {
      bad = true;
      return 0;
    }
    std::memcpy(&v, p, sizeof v);
    p += sizeof v;
    left -= sizeof v;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (left < sizeof v) {
      bad = true;
      return 0;
    }
    std::memcpy(&v, p, sizeof v);
    p += sizeof v;
    left -= sizeof v;
    return v;
  }
  std::uint8_t u8() {
    if (left < 1) {
      bad = true;
      return 0;
    }
    const std::uint8_t v = *p;
    ++p;
    --left;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (bad || left < n) {
      bad = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
};

JobState job_state_from_byte(std::uint8_t b) {
  switch (b) {
    case std::uint8_t(JobState::kQueued): return JobState::kQueued;
    case std::uint8_t(JobState::kRunning): return JobState::kRunning;
    case std::uint8_t(JobState::kDone): return JobState::kDone;
    case std::uint8_t(JobState::kFailed): return JobState::kFailed;
    case std::uint8_t(JobState::kCancelled): return JobState::kCancelled;
    default: return JobState::kFailed;  // don't trust on-disk bytes
  }
}

double parse_double(const KvMap& spec, const std::string& key, double fb) {
  const auto it = spec.find(key);
  if (it == spec.end()) return fb;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || !std::isfinite(v)) {
    throw std::invalid_argument("spec: bad " + key + " '" + it->second + "'");
  }
  return v;
}

std::uint64_t parse_u64(const KvMap& spec, const std::string& key,
                        std::uint64_t fb) {
  const auto it = spec.find(key);
  if (it == spec.end()) return fb;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("spec: bad " + key + " '" + it->second + "'");
  }
  return v;
}

Time seconds_to_time(double s) {
  return std::chrono::microseconds(std::llround(s * 1e6));
}

/// "job-<id>.jnl" -> id, or 0 when the name is not a job journal.
std::uint64_t job_id_from_journal_path(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.size() <= 8 || name.compare(0, 4, "job-") != 0 ||
      name.compare(name.size() - 4, 4, ".jnl") != 0) {
    return 0;
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

}  // namespace

std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

std::vector<core::SweepCell> inline_cells_from_spec(const KvMap& spec) {
  core::Scenario sc;

  const std::string sys = kv_get(spec, "system", "stadia");
  if (sys == "stadia") {
    sc.system = stream::GameSystem::kStadia;
  } else if (sys == "geforce") {
    sc.system = stream::GameSystem::kGeForce;
  } else if (sys == "luna") {
    sc.system = stream::GameSystem::kLuna;
  } else {
    throw std::invalid_argument("spec: bad system '" + sys +
                                "' (stadia|geforce|luna)");
  }

  const std::string cc = kv_get(spec, "cc", "cubic");
  if (cc == "cubic") {
    sc.tcp_algo = tcp::CcAlgo::kCubic;
  } else if (cc == "bbr") {
    sc.tcp_algo = tcp::CcAlgo::kBbr;
  } else if (cc == "reno") {
    sc.tcp_algo = tcp::CcAlgo::kReno;
  } else if (cc == "vegas") {
    sc.tcp_algo = tcp::CcAlgo::kVegas;
  } else if (cc == "none") {
    sc.tcp_algo.reset();
  } else {
    throw std::invalid_argument("spec: bad cc '" + cc +
                                "' (cubic|bbr|reno|vegas|none)");
  }

  const double cap = parse_double(spec, "cap_mbps", 25.0);
  sc.capacity = Bandwidth::mbps(cap);
  sc.queue_bdp_mult = parse_double(spec, "queue", 2.0);
  if (spec.count("base_rtt_ms") != 0) {
    sc.base_rtt = seconds_to_time(parse_double(spec, "base_rtt_ms", 0) / 1e3);
  }
  if (spec.count("duration_s") != 0) {
    sc.duration = seconds_to_time(parse_double(spec, "duration_s", 0));
  }
  if (spec.count("tcp_start_s") != 0) {
    sc.tcp_start = seconds_to_time(parse_double(spec, "tcp_start_s", 0));
  }
  if (spec.count("tcp_stop_s") != 0) {
    sc.tcp_stop = seconds_to_time(parse_double(spec, "tcp_stop_s", 0));
  }
  sc.seed = parse_u64(spec, "seed", 1);

  std::ostringstream label;
  label << to_string(sc.system) << ' ' << cap << "Mb/s " << sc.queue_bdp_mult
        << "xBDP " << (sc.tcp_algo ? to_string(*sc.tcp_algo) : "solo");
  return {{label.str(), sc}};
}

JobStore::JobStore(std::string dir, std::size_t max_queue)
    : dir_(std::move(dir)), max_queue_(max_queue) {}

std::string JobStore::journal_path(std::uint64_t id) const {
  return dir_ + "/job-" + std::to_string(id) + ".jnl";
}

std::string JobStore::csv_prefix(std::uint64_t id) const {
  return dir_ + "/job-" + std::to_string(id);
}

std::string JobStore::state_path() const { return dir_ + "/sweepd.state"; }

JobStore::Admission JobStore::submit(KvMap spec) {
  std::lock_guard lk(mu_);
  if (queue_.size() >= max_queue_) {
    Admission a;
    a.err = core::ProtoError::kQueueFull;
    // Advisory only: scale the hint with the backlog so a thundering herd
    // spreads out instead of re-colliding.
    a.retry_after_s = 2.0 * double(queue_.size());
    a.message = "admission queue is full (" + std::to_string(queue_.size()) +
                " jobs queued)";
    return a;
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->spec = std::move(spec);
  job->state = JobState::kQueued;
  const std::uint64_t id = job->id;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  save_state_locked();
  Admission a;
  a.id = id;
  return a;
}

std::uint64_t JobStore::claim_next() {
  std::lock_guard lk(mu_);
  while (!queue_.empty()) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->state != JobState::kQueued) continue;
    it->second->state = JobState::kRunning;
    save_state_locked();
    return id;
  }
  return 0;
}

void JobStore::finish(std::uint64_t id, JobState final_state,
                      std::string error) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second->state = final_state;
  it->second->error = std::move(error);
  save_state_locked();
}

void JobStore::requeue_front(std::uint64_t id) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second->state = JobState::kQueued;
  it->second->stop.store(false);
  queue_.push_front(id);
  save_state_locked();
}

core::ProtoError JobStore::cancel(std::uint64_t id) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return core::ProtoError::kUnknownJob;
  Job& job = *it->second;
  if (is_terminal(job.state)) return core::ProtoError::kNone;  // idempotent
  job.cancel_requested = true;
  if (job.state == JobState::kQueued) {
    job.state = JobState::kCancelled;
    job.error = "cancelled while queued";
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
    save_state_locked();
  } else {
    // Running: flip the engine's graceful-drain flag; the runner observes
    // the interruption and finishes the job as cancelled.
    job.stop.store(true);
  }
  return core::ProtoError::kNone;
}

Job* JobStore::find(std::uint64_t id) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

void JobStore::update_progress(std::uint64_t id,
                               const core::ProgressSnapshot& s) {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second->progress = s;
  it->second->have_progress = true;
}

bool JobStore::snapshot(std::uint64_t id, JobState* state, KvMap* spec,
                        std::string* error, core::ProgressSnapshot* progress,
                        bool* have_progress) const {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  const Job& job = *it->second;
  if (state != nullptr) *state = job.state;
  if (spec != nullptr) *spec = job.spec;
  if (error != nullptr) *error = job.error;
  if (progress != nullptr) *progress = job.progress;
  if (have_progress != nullptr) *have_progress = job.have_progress;
  return true;
}

std::string JobStore::status_text() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  os << jobs_.size() << " job" << (jobs_.size() == 1 ? "" : "s") << ", "
     << queue_.size() << " queued\n";
  for (const auto& [id, job] : jobs_) {
    os << "job " << id << "  " << to_string(job->state);
    if (job->have_progress) {
      os << "  " << job->progress.finished << "/" << job->progress.total
         << " runs";
      if (job->progress.failed > 0) {
        os << " (" << job->progress.failed << " failed)";
      }
    }
    const std::string grid = kv_get(job->spec, "grid");
    if (!grid.empty()) os << "  grid=" << grid;
    if (!job->error.empty()) os << "  [" << job->error << "]";
    os << "\n";
  }
  return os.str();
}

std::size_t JobStore::queued_count() const {
  std::lock_guard lk(mu_);
  return queue_.size();
}

void JobStore::save_state() const {
  std::lock_guard lk(mu_);
  save_state_locked();
}

void JobStore::save_state_locked() const {
  std::vector<unsigned char> buf;
  buf.insert(buf.end(), kStateTag, kStateTag + sizeof kStateTag);
  put_u32(buf, kStateVersion);
  put_u64(buf, next_id_);
  put_u32(buf, std::uint32_t(jobs_.size()));
  for (const auto& [id, job] : jobs_) {
    put_u64(buf, id);
    buf.push_back(std::uint8_t(job->state));
    put_str(buf, encode_kv(job->spec));
    put_str(buf, job->error);
  }
  put_u32(buf, util::crc32(buf.data(), buf.size()));

  // tmp + rename: readers (the next incarnation) see the old state or the
  // new state, never a torn one.  Failures are swallowed — persistence is
  // best-effort on top of the journals, which carry the real results.
  const std::string tmp = state_path() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return;
  const bool wrote = core::proc::write_exact(fd, buf.data(), buf.size());
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (wrote && synced) {
    (void)::rename(tmp.c_str(), state_path().c_str());
  } else {
    (void)::unlink(tmp.c_str());
  }
}

std::vector<std::uint64_t> JobStore::recover() {
  std::lock_guard lk(mu_);

  // 1. The state file, if intact.  Anything wrong with it — missing,
  // short, bad tag/version/CRC, truncated record — discards it entirely;
  // the journal rescan below rebuilds what matters.
  do {
    const int fd = ::open(state_path().c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) break;
    std::vector<unsigned char> buf;
    unsigned char chunk[4096];
    for (;;) {
      const long r = core::proc::read_some(fd, chunk, sizeof chunk);
      if (r <= 0) break;
      buf.insert(buf.end(), chunk, chunk + r);
    }
    ::close(fd);
    if (buf.size() < sizeof kStateTag + 4 + 8 + 4 + 4) break;
    if (std::memcmp(buf.data(), kStateTag, sizeof kStateTag) != 0) break;
    std::uint32_t crc;
    std::memcpy(&crc, buf.data() + buf.size() - 4, 4);
    if (crc != util::crc32(buf.data(), buf.size() - 4)) break;

    Cursor c{buf.data() + sizeof kStateTag,
             buf.size() - sizeof kStateTag - 4};
    if (c.u32() != kStateVersion) break;
    const std::uint64_t next_id = c.u64();
    const std::uint32_t count = c.u32();
    std::map<std::uint64_t, std::unique_ptr<Job>> loaded;
    for (std::uint32_t i = 0; i < count && !c.bad; ++i) {
      auto job = std::make_unique<Job>();
      job->id = c.u64();
      job->state = job_state_from_byte(c.u8());
      job->spec = parse_kv(c.str());
      job->error = c.str();
      if (!c.bad && job->id != 0) loaded.emplace(job->id, std::move(job));
    }
    if (c.bad) break;
    jobs_ = std::move(loaded);
    next_id_ = std::max<std::uint64_t>(next_id, 1);
  } while (false);

  // 2. Journal rescan: journals are the ground truth, so any job-<id>.jnl
  // the state file does not know about (state file lost, or the crash beat
  // the save) is re-admitted with the spec recovered from its provenance
  // note.
  try {
    for (const core::JournalFileInfo& info :
         core::scan_journal_dir(dir_)) {
      const std::uint64_t id = job_id_from_journal_path(info.path);
      if (id == 0 || jobs_.count(id) != 0) continue;
      auto job = std::make_unique<Job>();
      job->id = id;
      job->spec = parse_kv(info.meta.note);
      job->state = JobState::kQueued;
      jobs_.emplace(id, std::move(job));
    }
  } catch (const core::JournalError&) {
    // Directory unreadable: nothing to rescan; the state file (if any)
    // already loaded.
  }

  // 3. Re-queue every non-terminal job oldest-first: an interrupted
  // running job resumes from its journal exactly like a queued one.
  queue_.clear();
  std::vector<std::uint64_t> resumed;
  for (auto& [id, job] : jobs_) {
    next_id_ = std::max(next_id_, id + 1);
    if (is_terminal(job->state)) continue;
    if (job->state == JobState::kRunning) resumed.push_back(id);
    job->state = JobState::kQueued;
    job->stop.store(false);
    job->cancel_requested = false;
    queue_.push_back(id);  // jobs_ is id-ordered: oldest first
  }
  save_state_locked();
  return resumed;
}

}  // namespace cgs::svc
