#include "svc/protocol.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace cgs::svc {
namespace {

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::vector<unsigned char> encode_frame(MsgType type,
                                        std::string_view payload) {
  std::vector<unsigned char> out;
  out.reserve(kFrameOverhead + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(std::uint8_t(type));
  put_u32(out, std::uint32_t(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

void FrameParser::feed(const unsigned char* data, std::size_t n) {
  if (bad_) return;  // the session is doomed; don't grow the buffer
  buf_.insert(buf_.end(), data, data + n);
}

FrameParser::Status FrameParser::next(Frame& out) {
  if (bad_) return Status::kBad;
  constexpr std::size_t kHeader = 4 + 1 + 4;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeader) return Status::kNeedMore;
  const unsigned char* p = buf_.data() + pos_;
  if (get_u32(p) != kFrameMagic) {
    bad_ = true;
    bad_reason_ = "bad frame magic";
    return Status::kBad;
  }
  const std::uint32_t payload_len = get_u32(p + 5);
  if (payload_len > kMaxPayload) {
    bad_ = true;
    bad_reason_ = "oversized frame (" + std::to_string(payload_len) +
                  " bytes > " + std::to_string(kMaxPayload) + " cap)";
    return Status::kBad;
  }
  const std::size_t total = kHeader + payload_len + 4;
  if (avail < total) return Status::kNeedMore;
  if (get_u32(p + total - 4) != util::crc32(p, total - 4)) {
    bad_ = true;
    bad_reason_ = "frame CRC mismatch";
    return Status::kBad;
  }
  out.type = MsgType(p[4]);
  out.payload.assign(p + kHeader, p + kHeader + payload_len);
  pos_ += total;
  // Compact once the dead prefix dominates, keeping the buffer bounded by
  // one in-flight frame plus change.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + std::ptrdiff_t(pos_));
    pos_ = 0;
  }
  return Status::kFrame;
}

std::string encode_kv(const KvMap& kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    out += k;
    out += '=';
    for (char c : v) out += (c == '\n') ? ' ' : c;
    out += '\n';
  }
  return out;
}

KvMap parse_kv(std::string_view text) {
  KvMap kv;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    kv[std::string(line.substr(0, eq))] = std::string(line.substr(eq + 1));
  }
  return kv;
}

std::string kv_get(const KvMap& kv, const std::string& key,
                   const std::string& fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

std::vector<unsigned char> encode_error(core::ProtoError code,
                                        std::string_view message,
                                        double retry_after_s) {
  KvMap kv;
  kv["code"] = std::to_string(int(code));
  kv["name"] = std::string(to_string(code));
  kv["message"] = std::string(message);
  if (retry_after_s > 0) kv["retry_after_s"] = std::to_string(retry_after_s);
  const std::string text = encode_kv(kv);
  return {text.begin(), text.end()};
}

}  // namespace cgs::svc
