// cgs-sweepd's engine room: a single-threaded poll() server plus one
// sweep-runner thread.
//
// The server thread owns the listening socket, every client session and
// all connection state; the runner thread owns the sweep engine.  They
// meet in exactly three thread-safe places — the JobStore (admission and
// lifecycle), the SnapshotPublisher (latest progress per job) and a
// self-wake pipe — so neither can stall the other: a slow subscriber
// costs the runner nothing, and a long sweep costs connection handling
// nothing.
//
// Robustness policy, end to end:
//
//   admission      bounded queue; beyond capacity a submission is refused
//                  with queue-full + advisory retry_after_s
//   validation     the resolver and Scenario::validate() run at submit
//                  time; failures become structured protocol errors on a
//                  live session
//   bad bytes      a frame failing magic/CRC/length gets one bad-frame
//                  error, then the session closes (framing is lost);
//                  well-framed nonsense gets bad-request and the session
//                  lives
//   slow readers   bounded per-session send buffer; snapshots beyond the
//                  cap are dropped and flagged (`lossy=1`), and the server
//                  stops reading from over-cap sessions so control frames
//                  stay bounded too
//   stuck jobs     every job runs under a wall-clock budget: the forked
//                  supervisor's deadline (forked mode) or the in-sim
//                  wall watchdog (in-process) — a wedged job becomes a
//                  failed job, never a wedged daemon
//   drain          SIGTERM/SIGINT -> request_drain() (signal-safe): stop
//                  accepting, gracefully stop the in-flight sweep (its
//                  finished jobs are journaled), persist the queue, exit
//   crash          kill -9 loses nothing durable: on restart the store
//                  rescans its directory and re-queues every non-terminal
//                  job, which resumes from its journal with results
//                  byte-identical to an uninterrupted run
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/proc.hpp"
#include "core/sweep.hpp"
#include "svc/job_store.hpp"
#include "svc/protocol.hpp"
#include "svc/publisher.hpp"

namespace cgs::svc {

/// Turn a submission spec into the cell list it describes.  Empty return =
/// the spec names a grid this daemon does not know (unknown-grid error);
/// std::invalid_argument / ScenarioError = invalid-scenario error.  The
/// same resolver runs at admission (validation) and again in the runner
/// (execution), so it must be deterministic — journal resume depends on
/// the grid resolving identically across daemon restarts.
using GridResolver =
    std::function<std::vector<core::SweepCell>(const KvMap& spec)>;

/// Resolver used when none is configured: inline single-cell specs only
/// (any "grid" key is unknown — named grids live in the tools layer).
[[nodiscard]] std::vector<core::SweepCell> default_resolver(const KvMap& spec);

struct ServerConfig {
  /// State directory: journals, CSVs and the queue state file live here.
  std::string dir = ".";
  /// TCP port on 127.0.0.1; 0 = kernel-chosen (listen() returns it).
  int port = 0;
  /// Admission-queue capacity (backpressure bound).
  std::size_t max_queue = 16;
  /// Per-session outgoing byte cap (slow-subscriber bound).
  std::size_t client_buffer_bytes = 256 * 1024;
  /// Engine snapshot throttle and the poll tick, in ms.
  std::uint32_t snapshot_ms = 200;
  /// Sweep threads per job (0 = hardware concurrency).
  int threads = 0;
  /// Runs per cell when the spec does not say (`runs=` key).
  int default_runs = 5;
  /// Run jobs under forked isolation (core/proc supervisor).
  bool forked = false;
  /// Forked-mode per-job rlimits.
  core::proc::ResourceLimits limits;
  /// Stuck-job wall budget in seconds (0 = none): forked jobs get the
  /// supervisor deadline, in-process jobs the in-sim wall watchdog.
  double job_wall_s = 0;
  /// fsync journal records (the crash-safety guarantee).
  bool journal_sync = true;
  /// Spec -> cells; defaults to default_resolver.
  GridResolver resolver;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind 127.0.0.1:{cfg.port} and listen.  Returns the chosen port
  /// (meaningful with port 0).  Throws std::runtime_error on failure.
  int listen();

  /// Recover state, start the runner, serve until a drain completes.
  void run();

  /// Async-signal-safe drain trigger (call it from SIGTERM/SIGINT
  /// handlers): atomically flags the drain and pokes the wake pipe.
  void request_drain();

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] JobStore& store() { return store_; }

 private:
  struct Session;

  void wake();
  void accept_clients();
  void handle_readable(Session& s);
  void handle_writable(Session& s);
  void dispatch(Session& s, const Frame& f);
  void handle_submit(Session& s, const Frame& f);
  void handle_watch(Session& s, const Frame& f);
  void push_snapshots();
  void publish_job(std::uint64_t id, const core::ProgressSnapshot& snap,
                   bool terminal);
  void publish_terminal(std::uint64_t id);
  void send_frame(Session& s, MsgType type, std::string_view payload,
                  bool droppable = false);
  void send_error(Session& s, core::ProtoError code, std::string_view msg,
                  double retry_after_s = 0);
  void begin_drain();
  void runner_main();
  void run_job(std::uint64_t id);

  ServerConfig cfg_;
  JobStore store_;
  SnapshotPublisher publisher_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_fds_[2] = {-1, -1};
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<bool> drain_flag_{false};  // set by request_drain (signals)
  bool draining_ = false;                // server thread's view
  std::atomic<bool> runner_done_{false};
  std::atomic<std::uint64_t> current_job_{0};
  // Runner wakeup (submit/drain -> runner).
  std::mutex runner_mu_;
  std::condition_variable runner_cv_;
  std::thread runner_thread_;
};

}  // namespace cgs::svc
