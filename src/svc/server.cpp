#include "svc/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/journal.hpp"
#include "core/report.hpp"

namespace cgs::svc {
namespace {

[[noreturn]] void server_error(const char* op) {
  throw std::runtime_error(std::string("sweepd: ") + op + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint64_t parse_id(const KvMap& kv, const std::string& key) {
  const std::string v = kv_get(kv, key);
  if (v.empty()) return 0;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(v.c_str(), &end, 10);
  return (end == v.c_str() || *end != '\0') ? 0 : id;
}

}  // namespace

/// One connected client.  Owned by the server thread exclusively.
struct Server::Session {
  explicit Session(int fd_in, std::size_t out_cap)
      : fd(fd_in), out(out_cap) {}
  int fd;
  FrameParser parser;
  SendBuffer out;
  bool closing = false;        // flush out, then close (bad frame / drain)
  bool watching = false;
  std::uint64_t watch_job = 0;
  std::uint64_t sent_seq = 0;  // last snapshot seq shipped on this watch
  bool done_sent = false;      // terminal frame delivered for this watch
};

std::vector<core::SweepCell> default_resolver(const KvMap& spec) {
  if (spec.count("grid") != 0) return {};  // no named grids at this layer
  return inline_cells_from_spec(spec);
}

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)), store_(cfg_.dir, cfg_.max_queue) {
  if (!cfg_.resolver) cfg_.resolver = default_resolver;
}

Server::~Server() {
  if (runner_thread_.joinable()) {
    {
      std::lock_guard lk(runner_mu_);
      draining_ = true;
    }
    runner_cv_.notify_all();
    runner_thread_.join();
  }
  for (auto& s : sessions_) ::close(s->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

int Server::listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) server_error("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
  addr.sin_port = htons(std::uint16_t(cfg_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    server_error("bind");
  }
  if (::listen(listen_fd_, 16) != 0) server_error("listen");
  set_nonblocking(listen_fd_);

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    server_error("getsockname");
  }
  port_ = int(ntohs(addr.sin_port));

  if (::pipe(wake_fds_) != 0) server_error("pipe");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  return port_;
}

void Server::wake() {
  const unsigned char b = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  (void)!::write(wake_fds_[1], &b, 1);
}

void Server::request_drain() {
  // Only async-signal-safe operations: an atomic store and a write().
  drain_flag_.store(true, std::memory_order_release);
  const unsigned char b = 1;
  (void)!::write(wake_fds_[1], &b, 1);
}

void Server::run() {
  if (listen_fd_ < 0) {
    throw std::logic_error("sweepd: run() before listen()");
  }
  // Restart recovery: every non-terminal job in the state directory goes
  // back on the queue and resumes from its journal.
  (void)store_.recover();

  runner_done_.store(false);
  runner_thread_ = std::thread([this] { runner_main(); });

  std::vector<pollfd> pfds;
  for (;;) {
    if (drain_flag_.load(std::memory_order_acquire) && !draining_) {
      begin_drain();
    }
    if (draining_ && runner_done_.load(std::memory_order_acquire)) {
      // In-flight work is journaled and the queue persisted; flush what we
      // can right now and exit.  (Watchers see the socket close and
      // reconnect to the next incarnation.)
      store_.save_state();
      for (auto& s : sessions_) handle_writable(*s);
      break;
    }

    pfds.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    if (!draining_) pfds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t first_client = pfds.size();
    for (auto& s : sessions_) {
      short ev = 0;
      // Read gating: an over-cap session gets no POLLIN, so a stalled
      // subscriber cannot pump requests that mint new control frames.
      if (!s->closing && !s->out.over_cap()) ev |= POLLIN;
      if (!s->out.empty()) ev |= POLLOUT;
      pfds.push_back({s->fd, ev, 0});
    }

    const int pr = ::poll(pfds.data(), nfds_t(pfds.size()),
                          int(cfg_.snapshot_ms));
    if (pr < 0) {
      if (errno == EINTR) continue;
      server_error("poll");
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      unsigned char drainbuf[64];
      while (::read(wake_fds_[0], drainbuf, sizeof drainbuf) > 0) {}
    }
    if (!draining_ && (pfds[first_client - 1].revents & POLLIN) != 0) {
      accept_clients();
    }
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      const short re = pfds[first_client + i].revents;
      Session& s = *sessions_[i];
      if ((re & POLLOUT) != 0) handle_writable(s);
      if ((re & POLLIN) != 0) handle_readable(s);
      if ((re & (POLLERR | POLLHUP)) != 0 && s.out.empty()) s.closing = true;
    }

    push_snapshots();

    // Reap sessions that are closed or have flushed their goodbye.
    for (std::size_t i = 0; i < sessions_.size();) {
      Session& s = *sessions_[i];
      if (s.fd < 0 || (s.closing && s.out.empty())) {
        if (s.fd >= 0) ::close(s.fd);
        sessions_.erase(sessions_.begin() + std::ptrdiff_t(i));
      } else {
        ++i;
      }
    }
  }

  runner_thread_.join();
  for (auto& s : sessions_) ::close(s->fd);
  sessions_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::begin_drain() {
  {
    // Under the runner mutex: the runner reads draining_ in its wait
    // predicate.
    std::lock_guard lk(runner_mu_);
    draining_ = true;
  }
  // Gracefully stop the in-flight sweep: its in-flight (cell, seed) jobs
  // finish and are journaled, the rest stays queued for the next
  // incarnation.
  const std::uint64_t cur = current_job_.load(std::memory_order_acquire);
  if (cur != 0) {
    if (Job* job = store_.find(cur)) job->stop.store(true);
  }
  runner_cv_.notify_all();
}

void Server::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN and real errors alike: try again next tick
    }
    set_nonblocking(fd);
    sessions_.push_back(
        std::make_unique<Session>(fd, cfg_.client_buffer_bytes));
  }
}

void Server::send_frame(Session& s, MsgType type, std::string_view payload,
                        bool droppable) {
  (void)s.out.push(encode_frame(type, payload), droppable);
}

void Server::send_error(Session& s, core::ProtoError code,
                        std::string_view msg, double retry_after_s) {
  const auto payload = encode_error(code, msg, retry_after_s);
  (void)s.out.push(
      encode_frame(MsgType::kError,
                   std::string_view(
                       reinterpret_cast<const char*>(payload.data()),
                       payload.size())),
      false);
}

void Server::handle_readable(Session& s) {
  unsigned char chunk[16 * 1024];
  for (;;) {
    const ssize_t r = ::recv(s.fd, chunk, sizeof chunk, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      ::close(s.fd);
      s.fd = -1;
      return;
    }
    if (r == 0) {  // peer closed; flush anything pending, then reap
      s.closing = true;
      break;
    }
    s.parser.feed(chunk, std::size_t(r));
    if (std::size_t(r) < sizeof chunk) break;
  }

  Frame f;
  for (;;) {
    const FrameParser::Status st = s.parser.next(f);
    if (st == FrameParser::Status::kNeedMore) break;
    if (st == FrameParser::Status::kBad) {
      // Framing is lost: one structured goodbye, then close.
      send_error(s, core::ProtoError::kBadFrame, s.parser.bad_reason());
      s.closing = true;
      break;
    }
    dispatch(s, f);
    if (s.closing) break;
  }
}

void Server::handle_writable(Session& s) {
  if (s.fd < 0) return;
  for (;;) {
    std::size_t n = 0;
    const unsigned char* p = s.out.front(n);
    if (n == 0) return;
    const ssize_t w = ::send(s.fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      ::close(s.fd);  // broken pipe etc.: the session is gone
      s.fd = -1;
      return;
    }
    s.out.consume(std::size_t(w));
  }
}

void Server::dispatch(Session& s, const Frame& f) {
  switch (f.type) {
    case MsgType::kSubmit: handle_submit(s, f); return;
    case MsgType::kStatus:
      send_frame(s, MsgType::kReport, store_.status_text());
      return;
    case MsgType::kWatch: handle_watch(s, f); return;
    case MsgType::kCancel: {
      const std::uint64_t id = parse_id(parse_kv(f.text()), "job");
      if (id == 0) {
        send_error(s, core::ProtoError::kBadRequest, "cancel: missing job=");
        return;
      }
      const core::ProtoError err = store_.cancel(id);
      if (err != core::ProtoError::kNone) {
        send_error(s, err, "cancel: no such job " + std::to_string(id));
        return;
      }
      send_frame(s, MsgType::kReport,
                 "cancel requested for job " + std::to_string(id) + "\n");
      wake();
      return;
    }
    case MsgType::kDrain:
      send_frame(s, MsgType::kReport, "draining\n");
      request_drain();
      return;
    default:
      // Well-framed but unintelligible: the session survives.
      send_error(s, core::ProtoError::kBadRequest,
                 "unknown request type " +
                     std::to_string(int(std::uint8_t(f.type))));
      return;
  }
}

void Server::handle_submit(Session& s, const Frame& f) {
  if (draining_) {
    send_error(s, core::ProtoError::kDraining,
               "daemon is draining; resubmit to the next instance");
    return;
  }
  const KvMap spec = parse_kv(f.text());

  // Validate now, on the server thread, so a bad submission is a
  // structured error at submit time — not a failed job discovered later.
  try {
    const std::vector<core::SweepCell> cells = cfg_.resolver(spec);
    if (cells.empty()) {
      send_error(s, core::ProtoError::kUnknownGrid,
                 "unknown grid '" + kv_get(spec, "grid") + "'");
      return;
    }
    for (const core::SweepCell& c : cells) c.scenario.validate();
    const long runs = std::strtol(
        kv_get(spec, "runs", std::to_string(cfg_.default_runs)).c_str(),
        nullptr, 10);
    if (runs <= 0 || runs > 1'000'000) {
      send_error(s, core::ProtoError::kBadRequest,
                 "runs must be in [1, 1e6], got '" + kv_get(spec, "runs") +
                     "'");
      return;
    }
  } catch (const core::SimError& e) {
    send_error(s, core::ProtoError::kInvalidScenario, e.what());
    return;
  } catch (const std::invalid_argument& e) {
    send_error(s, core::ProtoError::kInvalidScenario, e.what());
    return;
  } catch (const std::exception& e) {
    send_error(s, core::ProtoError::kInternal, e.what());
    return;
  }

  const JobStore::Admission adm = store_.submit(spec);
  if (adm.err != core::ProtoError::kNone) {
    send_error(s, adm.err, adm.message, adm.retry_after_s);
    return;
  }
  KvMap ack;
  ack["job"] = std::to_string(adm.id);
  ack["journal"] = store_.journal_path(adm.id);
  send_frame(s, MsgType::kAccepted, encode_kv(ack));
  {
    std::lock_guard lk(runner_mu_);
  }
  runner_cv_.notify_all();
}

void Server::handle_watch(Session& s, const Frame& f) {
  const KvMap kv = parse_kv(f.text());
  const std::uint64_t id = parse_id(kv, "job");
  JobState state{};
  if (id == 0 || !store_.snapshot(id, &state, nullptr, nullptr, nullptr,
                                  nullptr)) {
    send_error(s, core::ProtoError::kUnknownJob,
               "watch: no such job " + kv_get(kv, "job"));
    return;
  }
  s.watching = true;
  s.watch_job = id;
  // Reconnect resume: the client tells us the last snapshot seq it saw and
  // only newer ones flow.  A fresh watch starts from 0 (everything).
  s.sent_seq = parse_id(kv, "seq");
  s.done_sent = false;
  // Make sure there is something to deliver even if the job never
  // published this incarnation (e.g. it finished before a restart).
  if (!publisher_.latest(id).has_value()) publish_terminal(id);
  wake();
}

void Server::push_snapshots() {
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (!s.watching || s.fd < 0 || s.closing) continue;
    const auto latest = publisher_.latest(s.watch_job);
    if (!latest.has_value()) continue;
    if (latest->seq > s.sent_seq) {
      std::string payload = latest->payload;
      payload += "seq=" + std::to_string(latest->seq) + "\n";
      // In-band loss marker: this session missed at least one snapshot to
      // the buffer cap since the last one that fit.
      if (s.out.take_lossy()) payload += "lossy=1\n";
      if (s.out.push(encode_frame(MsgType::kSnapshot, payload), true)) {
        s.sent_seq = latest->seq;
      }
      // Dropped: sent_seq stays put; we retry when the buffer drains.
    }
    if (latest->done && !s.done_sent && s.sent_seq >= latest->seq) {
      JobState state{};
      std::string error;
      (void)store_.snapshot(s.watch_job, &state, nullptr, &error, nullptr,
                            nullptr);
      KvMap done;
      done["job"] = std::to_string(s.watch_job);
      done["state"] = std::string(to_string(state));
      if (!error.empty()) done["error"] = error;
      if (state == JobState::kDone || state == JobState::kFailed) {
        done["csv"] = store_.csv_prefix(s.watch_job);
      }
      send_frame(s, MsgType::kDone, encode_kv(done));
      s.done_sent = true;
    }
  }
}

void Server::publish_job(std::uint64_t id, const core::ProgressSnapshot& snap,
                         bool terminal) {
  JobState state{};
  (void)store_.snapshot(id, &state, nullptr, nullptr, nullptr, nullptr);
  KvMap kv;
  kv["job"] = std::to_string(id);
  kv["state"] = std::string(to_string(state));
  kv["total"] = std::to_string(snap.total);
  kv["finished"] = std::to_string(snap.finished);
  kv["succeeded"] = std::to_string(snap.succeeded);
  kv["failed"] = std::to_string(snap.failed);
  kv["skipped"] = std::to_string(snap.skipped);
  kv["retries"] = std::to_string(snap.retries);
  kv["quarantined"] = std::to_string(snap.quarantined);
  kv["cells"] = std::to_string(snap.cells);
  kv["cells_finished"] = std::to_string(snap.cells_finished);
  if (snap.final) kv["final"] = "1";
  publisher_.publish(id, encode_kv(kv), terminal);
  wake();
}

void Server::publish_terminal(std::uint64_t id) {
  JobState state{};
  core::ProgressSnapshot snap;
  bool have = false;
  if (!store_.snapshot(id, &state, nullptr, nullptr, &snap, &have)) return;
  publish_job(id, snap, is_terminal(state));
}

void Server::runner_main() {
  for (;;) {
    bool drain = false;
    {
      std::unique_lock lk(runner_mu_);
      runner_cv_.wait(lk, [this] {
        return draining_ || store_.queued_count() > 0;
      });
      drain = draining_;
    }
    if (drain) break;
    const std::uint64_t id = store_.claim_next();
    if (id == 0) continue;
    current_job_.store(id, std::memory_order_release);
    run_job(id);
    current_job_.store(0, std::memory_order_release);
  }
  runner_done_.store(true, std::memory_order_release);
  wake();
}

void Server::run_job(std::uint64_t id) {
  Job* job = store_.find(id);
  if (job == nullptr) return;
  KvMap spec;
  (void)store_.snapshot(id, nullptr, &spec, nullptr, nullptr, nullptr);

  std::vector<core::SweepCell> cells;
  try {
    cells = cfg_.resolver(spec);
    if (cells.empty()) {
      throw std::invalid_argument("unknown grid '" + kv_get(spec, "grid") +
                                  "'");
    }
  } catch (const std::exception& e) {
    // Admission validated this, so failing here means the daemon changed
    // under a recovered job (different grids, say) — a failed job, not a
    // dead daemon.
    store_.finish(id, JobState::kFailed,
                  std::string("spec no longer resolves: ") + e.what());
    publish_terminal(id);
    return;
  }

  core::SweepOptions opts;
  opts.runs = int(std::strtol(
      kv_get(spec, "runs", std::to_string(cfg_.default_runs)).c_str(),
      nullptr, 10));
  if (opts.runs <= 0) opts.runs = cfg_.default_runs;
  opts.threads = cfg_.threads;
  opts.stop = &job->stop;
  opts.throw_on_failure = false;
  opts.journal_path = store_.journal_path(id);
  opts.journal_sync = cfg_.journal_sync;
  // The journal note carries the spec: recovery can re-admit this job from
  // the journal alone, with no state file at all.
  opts.journal_note = encode_kv(spec);
  opts.snapshot_interval_ms = cfg_.snapshot_ms;
  opts.on_snapshot = [this, id](const core::ProgressSnapshot& snap) {
    store_.update_progress(id, snap);
    publish_job(id, snap, false);
  };
  if (cfg_.forked) {
    opts.isolation = core::Isolation::kForked;
    opts.limits = cfg_.limits;
    if (cfg_.job_wall_s > 0 && opts.limits.wall_seconds <= 0) {
      opts.limits.wall_seconds = cfg_.job_wall_s;
    }
  } else if (cfg_.job_wall_s > 0) {
    // Stuck-job watchdog, in-process flavor: the wall budget is
    // environmental (not part of the grid fingerprint), so setting it here
    // never breaks journal resume.
    for (core::SweepCell& c : cells) {
      c.scenario.watchdog_wall_budget_s = cfg_.job_wall_s;
    }
  }

  core::SweepResult result;
  try {
    result = core::run_sweep(cells, opts);
  } catch (const std::exception& e) {
    store_.finish(id, JobState::kFailed, e.what());
    publish_terminal(id);
    return;
  }

  if (result.report.interrupted) {
    if (job->cancel_requested) {
      store_.finish(id, JobState::kCancelled, "cancelled while running");
      publish_terminal(id);
    } else {
      // Drain: journaled progress is safe; the next incarnation resumes.
      store_.requeue_front(id);
    }
    return;
  }

  std::string error;
  JobState final_state = JobState::kDone;
  try {
    (void)core::write_sweep_csvs(store_.csv_prefix(id), result);
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = std::string("writing CSVs failed: ") + e.what();
  }
  if (final_state == JobState::kDone && result.report.failed() != 0) {
    final_state = JobState::kFailed;
    error = std::to_string(result.report.failed()) + " of " +
            std::to_string(result.report.total) + " jobs failed";
  }
  store_.finish(id, final_state, error);
  publish_terminal(id);
}

}  // namespace cgs::svc
