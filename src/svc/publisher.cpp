#include "svc/publisher.hpp"

#include <utility>

namespace cgs::svc {

std::uint64_t SnapshotPublisher::publish(std::uint64_t job,
                                         std::string payload, bool done) {
  std::lock_guard lk(mu_);
  PublishedSnapshot& slot = latest_[job];
  ++slot.seq;
  slot.payload = std::move(payload);
  // Terminal is sticky: a late throttled snapshot delivered after the
  // final one must not un-finish the job in subscribers' eyes.
  slot.done = slot.done || done;
  return slot.seq;
}

std::optional<PublishedSnapshot> SnapshotPublisher::latest(
    std::uint64_t job) const {
  std::lock_guard lk(mu_);
  const auto it = latest_.find(job);
  if (it == latest_.end()) return std::nullopt;
  return it->second;
}

bool SendBuffer::push(std::vector<unsigned char> frame, bool droppable) {
  if (droppable && bytes_ + frame.size() > cap_) {
    lossy_ = true;
    return false;
  }
  bytes_ += frame.size();
  frames_.push_back(std::move(frame));
  return true;
}

const unsigned char* SendBuffer::front(std::size_t& n) const {
  if (frames_.empty()) {
    n = 0;
    return nullptr;
  }
  const auto& f = frames_.front();
  n = f.size() - front_off_;
  return f.data() + front_off_;
}

void SendBuffer::consume(std::size_t n) {
  bytes_ -= n;
  while (n > 0) {
    auto& f = frames_.front();
    const std::size_t left = f.size() - front_off_;
    if (n < left) {
      front_off_ += n;
      return;
    }
    n -= left;
    front_off_ = 0;
    frames_.pop_front();
  }
}

}  // namespace cgs::svc
