// Telemetry fan-out with graceful degradation for the sweep service.
//
// Two building blocks, both deliberately dumb:
//
//  - SnapshotPublisher: a thread-safe "latest value wins" mailbox of
//    progress snapshots, one slot per job with a monotonic sequence
//    number.  The sweep runner publishes from its worker threads; the
//    server's poll loop reads.  Only the newest snapshot is retained —
//    telemetry is a state stream, not an event log, so a subscriber that
//    fell behind catches up in one frame instead of replaying history.
//    Terminal snapshots stay retained so a watcher connecting after the
//    job finished still gets the end state (that is what makes client
//    reconnect resume-from-seq work).
//
//  - SendBuffer: one session's bounded outgoing queue.  Droppable frames
//    (snapshots) pushed beyond the byte cap are discarded and the buffer
//    marked lossy — the next snapshot that does fit tells the client it
//    missed some (`lossy=1`).  Control frames (errors, accept/done acks)
//    always append; they stay bounded because the server stops *reading*
//    from a session whose buffer is over the cap, so a stalled subscriber
//    cannot manufacture new control traffic either.  This is the policy
//    that lets one wedged `watch` client cost O(cap) memory and zero sweep
//    throughput.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cgs::svc {

/// One published progress reading for a job.
struct PublishedSnapshot {
  std::uint64_t seq = 0;  // per-job, monotonically increasing from 1
  std::string payload;    // encoded kv, ready to frame
  bool done = false;      // terminal: the job reached its final state
};

/// Latest-value mailbox, publisher side thread-safe vs reader side.
class SnapshotPublisher {
 public:
  /// Replace job's snapshot, assigning the next sequence number (returned).
  std::uint64_t publish(std::uint64_t job, std::string payload, bool done);

  /// Latest snapshot for a job, or nullopt if nothing published yet.
  [[nodiscard]] std::optional<PublishedSnapshot> latest(
      std::uint64_t job) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, PublishedSnapshot> latest_;
};

/// Bounded per-session outgoing frame queue (single-threaded: owned by the
/// server's poll loop).
class SendBuffer {
 public:
  explicit SendBuffer(std::size_t cap_bytes) : cap_(cap_bytes) {}

  /// Queue a frame.  A droppable frame that would push the buffer over the
  /// cap is dropped (and the buffer marked lossy); control frames always
  /// append.  Returns false iff the frame was dropped.
  bool push(std::vector<unsigned char> frame, bool droppable);

  [[nodiscard]] bool empty() const { return frames_.empty(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] bool over_cap() const { return bytes_ >= cap_; }

  /// The next unsent span (valid until consume/push).  n = 0 when empty.
  [[nodiscard]] const unsigned char* front(std::size_t& n) const;

  /// Advance past `n` sent bytes (may end mid-frame: short send).
  void consume(std::size_t n);

  /// Read-and-clear the lossy marker (reported to the client in-band).
  bool take_lossy() {
    const bool l = lossy_;
    lossy_ = false;
    return l;
  }

 private:
  std::deque<std::vector<unsigned char>> frames_;
  std::size_t front_off_ = 0;  // sent prefix of frames_.front()
  std::size_t bytes_ = 0;      // unsent total across all frames
  std::size_t cap_;
  bool lossy_ = false;
};

}  // namespace cgs::svc
