// Wire protocol for the sweep service (cgs-sweepd).
//
// Everything crossing the daemon's local TCP socket is one length-prefixed
// CRC-framed message, in either direction:
//
//   u32 magic | u8 type | u32 payload_len | payload | u32 crc(all before)
//
// Native-endian, like the run journal: the socket is loopback-only, never
// an interchange format.  The CRC (util/crc32.hpp, same polynomial as the
// journal and the forked-worker pipe) exists because the daemon must
// survive garbage — a port scanner, a half-dead client, a truncated send
// — by classifying it, not by crashing or misparsing.  A frame that fails
// magic/length/CRC checks is unrecoverable mid-stream (framing is lost),
// so the daemon answers with one kBadFrame error and closes that session;
// every other malformed input is a structured kError reply on a session
// that stays open.
//
// Payloads are "key=value\n" text (KvMap) for requests and snapshots, and
// free-form text for human-facing reports — small, greppable, and
// versionless by construction: unknown keys are ignored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace cgs::svc {

/// Frame magic: rejects non-protocol peers at the first four bytes.
constexpr std::uint32_t kFrameMagic = 0x57534743u;  // "CGSW"

/// Hard payload cap: a length prefix beyond this is garbage (or an attack)
/// and classifies as a bad frame before any allocation happens.
constexpr std::size_t kMaxPayload = 1u << 20;

/// Bytes of framing around a payload: magic + type + length + crc.
constexpr std::size_t kFrameOverhead = 4 + 1 + 4 + 4;

/// Message taxonomy.  Requests are < 16, responses >= 16; values are wire
/// format — append, never renumber.
enum class MsgType : std::uint8_t {
  // client -> daemon
  kSubmit = 1,  // kv spec: named grid or inline scenario
  kStatus = 2,  // no payload: list all jobs
  kWatch = 3,   // kv: job=<id> [seq=<last-seen>] — subscribe to snapshots
  kCancel = 4,  // kv: job=<id>
  kDrain = 5,   // no payload: graceful daemon drain
  // daemon -> client
  kAccepted = 16,  // kv: job=<id> journal=<path>
  kError = 17,     // kv: code/name/message[/retry_after_s]
  kReport = 18,    // plain text, human-facing
  kSnapshot = 19,  // kv: job progress snapshot (droppable under pressure)
  kDone = 20,      // kv: job reached a terminal state
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<unsigned char> payload;

  [[nodiscard]] std::string text() const {
    return std::string(payload.begin(), payload.end());
  }
};

/// Assemble one wire frame.
[[nodiscard]] std::vector<unsigned char> encode_frame(MsgType type,
                                                      std::string_view payload);

/// Incremental frame decoder for one session's byte stream.  feed() bytes
/// as they arrive, then drain next() until it stops returning kFrame.
/// kBad is terminal: framing is lost, the caller must close the session
/// (bad_reason() says why, for the error reply and the log).
class FrameParser {
 public:
  enum class Status : std::uint8_t { kNeedMore, kFrame, kBad };

  void feed(const unsigned char* data, std::size_t n);
  Status next(Frame& out);

  [[nodiscard]] const std::string& bad_reason() const { return bad_reason_; }

 private:
  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::string bad_reason_;
  bool bad_ = false;
};

/// Request/snapshot payloads: sorted "key=value\n" lines.
using KvMap = std::map<std::string, std::string>;

/// Serialize (keys sorted by map order; '\n' in values becomes ' ' so the
/// line structure survives any input).
[[nodiscard]] std::string encode_kv(const KvMap& kv);

/// Parse "key=value" lines; lines without '=' are skipped, last duplicate
/// wins.  Never throws — unparseable text yields an empty/partial map.
[[nodiscard]] KvMap parse_kv(std::string_view text);

/// Lookup with default.
[[nodiscard]] std::string kv_get(const KvMap& kv, const std::string& key,
                                 const std::string& fallback = "");

/// Build a kError payload: code=<byte> name=<kebab> message=<text>
/// [retry_after_s=<seconds>].
[[nodiscard]] std::vector<unsigned char> encode_error(core::ProtoError code,
                                                      std::string_view message,
                                                      double retry_after_s = 0);

}  // namespace cgs::svc
