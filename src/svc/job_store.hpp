// Job admission, lifecycle and crash-tolerant persistence for the sweep
// service.
//
// The store is the daemon's single source of truth about jobs: a bounded
// FIFO admission queue (beyond capacity, submissions are rejected with a
// structured queue-full error carrying an advisory retry-after — memory
// stays bounded, the *client* holds the backlog), the per-job state
// machine, and two on-disk artifacts per job under the daemon's state
// directory:
//
//   job-<id>.jnl   the sweep's fsync'd run journal (core/journal) — the
//                  ground truth for results, including the submission spec
//                  in the journal's provenance note
//   job-<id>_*.csv the output set (core/report::write_sweep_csvs), written
//                  when the job completes
//
// plus one shared CRC-framed state file (sweepd.state, tmp+rename on every
// mutation) recording job ids, specs and states.  Recovery after any death
// — clean drain or kill -9 — is: load the state file if intact, then
// rescan the directory for job journals the state file missed (the journal
// note re-derives the spec), re-queue every non-terminal job, and resume
// each from its journal.  Because resume feeds journaled results through
// the same seed-order delivery path, a recovered job's CSVs are
// byte-identical to an uninterrupted run's.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "svc/protocol.hpp"

namespace cgs::svc {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

[[nodiscard]] std::string_view to_string(JobState s);

[[nodiscard]] constexpr bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

/// One submitted sweep.  Everything except `stop` is guarded by the
/// store's mutex; `stop` is the graceful-drain flag handed to the sweep
/// engine, flipped by cancel/drain from other threads.
struct Job {
  std::uint64_t id = 0;
  KvMap spec;
  JobState state = JobState::kQueued;
  std::atomic<bool> stop{false};
  bool cancel_requested = false;  // distinguishes cancel from daemon drain
  std::string error;              // terminal detail (failed/cancelled)
  core::ProgressSnapshot progress;
  bool have_progress = false;
};

/// Build the single cell of an inline (non-named-grid) submission from its
/// kv spec.  Recognized keys: system (stadia|geforce|luna), cc
/// (cubic|bbr|reno|vegas|none), cap_mbps, queue (xBDP), base_rtt_ms,
/// duration_s, tcp_start_s, tcp_stop_s, seed.  Unknown keys are ignored
/// (runs/grid belong to other layers); malformed values throw
/// std::invalid_argument naming the key — which the server maps to a
/// structured invalid-scenario error, not a dead session.
[[nodiscard]] std::vector<core::SweepCell> inline_cells_from_spec(
    const KvMap& spec);

/// Thread-safe job table + bounded queue + persistence.
class JobStore {
 public:
  JobStore(std::string dir, std::size_t max_queue);

  /// What admission decided.  err == kNone: admitted as job `id`.
  /// err == kQueueFull: retry_after_s carries the advisory backoff.
  struct Admission {
    core::ProtoError err = core::ProtoError::kNone;
    std::uint64_t id = 0;
    double retry_after_s = 0;
    std::string message;
  };

  /// Admit one spec into the queue (state is persisted before returning).
  [[nodiscard]] Admission submit(KvMap spec);

  /// Runner: claim the oldest queued job, marking it running.  0 = empty.
  [[nodiscard]] std::uint64_t claim_next();

  /// Runner: move a running job to a terminal state (persists).
  void finish(std::uint64_t id, JobState final_state, std::string error);

  /// Runner: a drain interrupted this running job — back to the queue
  /// front, journal intact, for the next daemon incarnation (persists).
  void requeue_front(std::uint64_t id);

  /// Cancel: queued jobs go terminal immediately; running jobs get their
  /// stop flag flipped (the runner finishes them as cancelled).  Returns
  /// kUnknownJob for ids the store has never seen; cancelling a terminal
  /// job is a no-op success.
  core::ProtoError cancel(std::uint64_t id);

  /// Pointer to a job (stable across map growth) or nullptr.  The caller
  /// may read `stop` freely; other fields only via store methods.
  [[nodiscard]] Job* find(std::uint64_t id);

  /// Mirror the latest engine snapshot into the job (for status listings).
  void update_progress(std::uint64_t id, const core::ProgressSnapshot& s);

  /// Copy out one job's fields.  False when unknown.
  bool snapshot(std::uint64_t id, JobState* state, KvMap* spec,
                std::string* error, core::ProgressSnapshot* progress,
                bool* have_progress) const;

  /// Human-facing listing of every job, oldest first.
  [[nodiscard]] std::string status_text() const;

  [[nodiscard]] std::size_t queued_count() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string journal_path(std::uint64_t id) const;
  [[nodiscard]] std::string csv_prefix(std::uint64_t id) const;
  [[nodiscard]] std::string state_path() const;

  /// Persist the job table (CRC-framed, tmp+rename).  Called internally on
  /// every mutation; exposed for the drain path's final write.
  void save_state() const;

  /// Restart recovery: load the state file (a corrupt or missing one is
  /// ignored, not fatal), rescan the directory for job journals the state
  /// file missed, and re-queue every non-terminal job oldest-first.
  /// Returns the ids re-queued for resume.
  std::vector<std::uint64_t> recover();

 private:
  void save_state_locked() const;

  std::string dir_;
  std::size_t max_queue_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::deque<std::uint64_t> queue_;
};

}  // namespace cgs::svc
