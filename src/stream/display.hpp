// Client display model: records which frames were presented and computes
// delivered frame rates — the simulator's PresentMon.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace cgs::stream {

class DisplayModel {
 public:
  void frame_presented(std::uint32_t frame_id, Time at);
  void frame_dropped(std::uint32_t frame_id, Time at);

  [[nodiscard]] std::uint64_t presented_total() const { return presented_.size(); }
  [[nodiscard]] std::uint64_t dropped_total() const { return dropped_; }

  /// Average presented frames/second over [from, to).
  [[nodiscard]] double fps_over(Time from, Time to) const;

  /// Presentation timestamps (sorted), for fine-grained analysis.
  [[nodiscard]] const std::vector<Time>& presentation_times() const {
    return presented_;
  }

 private:
  std::vector<Time> presented_;  // monotonically appended
  std::uint64_t dropped_ = 0;
};

}  // namespace cgs::stream
