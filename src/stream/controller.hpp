// Rate-controller interface for game-streaming system models.
//
// Every ~100 ms the sender digests a receiver report into a
// FeedbackSnapshot; the controller answers with a new encoder operating
// point.  The three commercial systems the paper measures are modelled as
// three implementations with different control laws (see controllers/).
#pragma once

#include <string_view>

#include "util/units.hpp"

namespace cgs::stream {

/// Digested receiver feedback handed to the controller.
struct FeedbackSnapshot {
  Time now = kTimeZero;
  Bandwidth send_rate;        // what the encoder currently targets
  Bandwidth recv_rate;        // goodput the receiver measured this interval
  double loss_fraction = 0.0; // loss over the report interval
  Time queuing_delay = kTimeZero;  // avg one-way delay minus observed base
  Time base_delay = kTimeZero;     // current base (min) one-way delay
  bool valid = false;              // false until the first report arrives
};

/// Encoder operating point chosen by the controller.
struct ControlDecision {
  Bandwidth target_bitrate;
  double target_fps = 60.0;
};

class RateController {
 public:
  virtual ~RateController() = default;

  /// Digest one feedback interval; returns the new operating point.
  virtual ControlDecision on_feedback(const FeedbackSnapshot& fb) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Current operating point without new feedback (initial state).
  [[nodiscard]] virtual ControlDecision current() const = 0;
};

}  // namespace cgs::stream
