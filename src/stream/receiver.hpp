// Game-streaming client: reassembles frames, measures loss/delay/rate,
// sends periodic feedback reports upstream, and drives the display model.
//
// FEC is modelled logically: a frame is decodable if the fraction of its
// packets lost is within the profile's FEC budget and the frame completes
// before its playout deadline.
#pragma once

#include <array>
#include <map>

#include "net/packet.hpp"
#include "sim/timer.hpp"
#include "stream/display.hpp"
#include "util/filters.hpp"

namespace cgs::stream {

class StreamReceiver final : public net::PacketSink {
 public:
  struct Options {
    net::FlowId flow = 0;
    Time feedback_interval = std::chrono::milliseconds(100);
    double fec_rate = 0.05;   // recoverable lost fraction per frame
    Time playout_deadline = std::chrono::milliseconds(120);
  };

  StreamReceiver(sim::Simulator& sim, net::PacketFactory& factory,
                 Options opts);

  /// Upstream path entry for feedback; must outlive the receiver.
  void set_output(net::PacketSink* out) { out_ = out; }

  void start();
  void stop();

  void handle_packet(net::PacketPtr pkt) override;

  [[nodiscard]] DisplayModel& display() { return display_; }
  [[nodiscard]] const DisplayModel& display() const { return display_; }

  [[nodiscard]] std::uint64_t packets_received() const { return cum_recv_; }
  [[nodiscard]] std::uint64_t packets_lost() const;
  [[nodiscard]] ByteSize bytes_received() const { return bytes_total_; }
  /// Lifetime loss fraction (packets).
  [[nodiscard]] double loss_rate() const;
  /// Duplicated / ancient packets rejected by the replay window (path
  /// duplication or extreme reordering); they touch no other counter.
  [[nodiscard]] std::uint64_t duplicates_discarded() const { return dups_; }
  /// Frames that missed their FEC budget and were concealed (frozen) by the
  /// display instead of presented.
  [[nodiscard]] std::uint64_t frames_concealed() const { return concealed_; }

 private:
  /// SRTP-style replay window: a bitmap over the last kBits sequence
  /// numbers.  Rejects duplicates (path duplication) and packets older than
  /// the window (they cannot be told apart from replays), so every counter
  /// downstream of it sees each sequence number at most once.
  class SeqWindow {
   public:
    /// Marks `seq` seen; returns false for duplicates / too-old packets.
    [[nodiscard]] bool accept(std::uint32_t seq);

   private:
    static constexpr std::uint32_t kBits = 4096;
    [[nodiscard]] bool test(std::uint32_t seq) const {
      return (bits_[(seq % kBits) >> 6] >> (seq % 64)) & 1u;
    }
    void set(std::uint32_t seq) {
      bits_[(seq % kBits) >> 6] |= std::uint64_t{1} << (seq % 64);
    }
    void clear(std::uint32_t seq) {
      bits_[(seq % kBits) >> 6] &= ~(std::uint64_t{1} << (seq % 64));
    }

    std::array<std::uint64_t, kBits / 64> bits_{};
    std::uint32_t max_ = 0;
    bool any_ = false;
  };

  struct FrameAsm {
    std::uint16_t expected = 0;
    std::uint16_t received = 0;
    /// Decodability threshold, fixed once `expected` is known (FEC erasure
    /// budget folded in) so the per-packet path never recomputes it.
    std::uint16_t needed = 1;
    Time gen_time = kTimeZero;
    Time complete_at = kTimeZero;  // arrival of the decodability threshold
    bool complete = false;
    bool decided = false;
  };

  void send_feedback();
  void decide_frame(std::uint32_t frame_id);

  sim::Simulator& sim_;
  net::PacketFactory& factory_;
  Options opts_;
  net::PacketSink* out_ = nullptr;

  sim::PeriodicTimer feedback_timer_;
  DisplayModel display_;

  std::map<std::uint32_t, FrameAsm> frames_;
  // Watermark of already-decided frames: a straggler packet arriving after
  // its frame was decided must not resurrect the frame entry.
  std::uint32_t decided_max_ = 0;
  bool any_decided_ = false;

  // Sequence accounting.  An impaired path can reorder and duplicate, so
  // everything below the replay window counts distinct sequence numbers.
  SeqWindow seq_window_;
  bool any_seq_ = false;
  std::uint32_t highest_seq_ = 0;
  std::uint64_t cum_recv_ = 0;
  std::uint64_t dups_ = 0;
  std::uint64_t concealed_ = 0;
  ByteSize bytes_total_{0};

  // Per-feedback-interval accumulators.
  std::uint64_t win_recv_ = 0;
  ByteSize win_bytes_{0};
  Time win_owd_sum_ = kTimeZero;
  Time win_owd_min_ = kTimeInfinite;
  std::uint32_t win_seq_base_ = 0;  // highest_seq_ at last report
  bool win_seq_base_valid_ = false;
};

}  // namespace cgs::stream
