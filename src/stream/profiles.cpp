#include "stream/profiles.hpp"

#include "stream/controllers/geforce_like.hpp"
#include "stream/controllers/luna_like.hpp"
#include "stream/controllers/stadia_like.hpp"

namespace cgs::stream {

std::string_view to_string(GameSystem s) {
  switch (s) {
    case GameSystem::kStadia: return "Stadia";
    case GameSystem::kGeForce: return "GeForce";
    case GameSystem::kLuna: return "Luna";
  }
  return "?";
}

const SystemProfile& profile_for(GameSystem s) {
  using std::chrono::milliseconds;
  // Table 1: Stadia 27.5 (2.3), GeForce 24.5 (1.8), Luna 23.7 (0.9) Mb/s.
  // Server pings (§3.3): Stadia 11.9 ms, GeForce 4.5 ms, Luna 16.4 ms.
  static const SystemProfile kStadia{
      GameSystem::kStadia, Bandwidth::mbps(27.5), Bandwidth::mbps(12.0),
      0.084,  // sd/mean = 2.3/27.5
      0.06, milliseconds(120), milliseconds(12), 1.35};
  static const SystemProfile kGeForce{
      GameSystem::kGeForce, Bandwidth::mbps(24.5), Bandwidth::mbps(12.0),
      0.073,  // 1.8/24.5
      0.13, milliseconds(150), milliseconds(5), 1.35};
  static const SystemProfile kLuna{
      GameSystem::kLuna, Bandwidth::mbps(23.7), Bandwidth::mbps(10.0),
      0.038,  // 0.9/23.7 — Luna had the least variation
      0.04, milliseconds(100), milliseconds(16), 1.35};
  switch (s) {
    case GameSystem::kStadia: return kStadia;
    case GameSystem::kGeForce: return kGeForce;
    case GameSystem::kLuna: return kLuna;
  }
  return kStadia;
}

std::unique_ptr<RateController> make_controller(GameSystem s) {
  switch (s) {
    case GameSystem::kStadia: {
      StadiaLikeConfig cfg;
      cfg.max_bitrate = profile_for(s).max_bitrate;
      cfg.start_bitrate = profile_for(s).start_bitrate;
      return std::make_unique<StadiaLikeController>(cfg);
    }
    case GameSystem::kGeForce: {
      GeForceLikeConfig cfg;
      cfg.max_bitrate = profile_for(s).max_bitrate;
      cfg.start_bitrate = profile_for(s).start_bitrate;
      return std::make_unique<GeForceLikeController>(cfg);
    }
    case GameSystem::kLuna: {
      LunaLikeConfig cfg;
      cfg.max_bitrate = profile_for(s).max_bitrate;
      cfg.start_bitrate = profile_for(s).start_bitrate;
      return std::make_unique<LunaLikeController>(cfg);
    }
  }
  return nullptr;
}

FrameSourceConfig frame_config_for(GameSystem s) {
  const SystemProfile& p = profile_for(s);
  FrameSourceConfig cfg;
  cfg.fps = 60.0;
  cfg.bitrate = p.start_bitrate;
  cfg.size_cv = p.frame_size_cv * 3.0;  // per-frame cv > per-second cv
  cfg.keyframe_interval = 300;
  cfg.keyframe_scale = 2.5;
  return cfg;
}

}  // namespace cgs::stream
