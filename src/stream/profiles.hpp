// Per-system profiles: every calibrated constant for the three modelled
// game-streaming systems lives here (DESIGN.md §4, "controller calibration").
#pragma once

#include <memory>
#include <string_view>

#include "stream/controller.hpp"
#include "stream/frame_source.hpp"

namespace cgs::stream {

enum class GameSystem { kStadia, kGeForce, kLuna };

[[nodiscard]] std::string_view to_string(GameSystem s);

struct SystemProfile {
  GameSystem system;
  Bandwidth max_bitrate;        // Table 1 unconstrained steady state
  Bandwidth start_bitrate;
  double frame_size_cv;         // frame size variability (Table 1 sd)
  double fec_rate;              // per-frame recoverable loss fraction
  Time playout_deadline;        // frame must complete within gen + deadline
  Time server_rtt_raw;          // measured server ping before padding (§3.3)
  double burst_factor;          // intra-frame pacing vs target bitrate
};

/// Profile constants for one system.
[[nodiscard]] const SystemProfile& profile_for(GameSystem s);

/// Construct the system's rate controller with profile-calibrated config.
[[nodiscard]] std::unique_ptr<RateController> make_controller(GameSystem s);

/// Encoder settings consistent with the profile.
[[nodiscard]] FrameSourceConfig frame_config_for(GameSystem s);

}  // namespace cgs::stream
