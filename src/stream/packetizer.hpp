// Splits encoded frames into RTP-style packets.
#pragma once

#include <vector>

#include "net/packet.hpp"
#include "stream/frame.hpp"

namespace cgs::stream {

class Packetizer {
 public:
  Packetizer(net::PacketFactory& factory, net::FlowId flow)
      : factory_(&factory), flow_(flow) {}

  /// Split `frame` into <= kRtpPayload-sized packets stamped at `now`.
  [[nodiscard]] std::vector<net::PacketPtr> packetize(const Frame& frame,
                                                      Time now);

  [[nodiscard]] std::uint32_t next_seq() const { return next_seq_; }

 private:
  net::PacketFactory* factory_;
  net::FlowId flow_;
  std::uint32_t next_seq_ = 0;
};

}  // namespace cgs::stream
