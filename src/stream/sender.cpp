#include "stream/sender.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cgs::stream {

StreamSender::StreamSender(sim::Simulator& sim, net::PacketFactory& factory,
                           Options opts, FrameSourceConfig encoder_cfg,
                           std::unique_ptr<RateController> controller,
                           Pcg32 rng)
    : sim_(sim),
      opts_(opts),
      encoder_(sim, encoder_cfg, rng,
               [this](const Frame& f) { on_frame(f); }),
      packetizer_(factory, opts.flow),
      controller_(std::move(controller)),
      pace_timer_(sim, [this] { drain_send_queue(); }),
      base_owd_ns_(opts.base_delay_window) {
  assert(controller_ && "StreamSender requires a rate controller");
  apply(controller_->current());
}

void StreamSender::start() {
  assert(out_ != nullptr && "set_output() before start()");
  running_ = true;
  next_send_time_ = sim_.now();
  encoder_.start();
}

void StreamSender::stop() {
  running_ = false;
  encoder_.stop();
  send_queue_.clear();
  pace_timer_.cancel();
}

void StreamSender::apply(const ControlDecision& d) {
  // The controller targets a wire bitrate (what the paper measures at the
  // router); the encoder produces payload bytes, so deduct the per-packet
  // IP/UDP overhead share.
  constexpr double kPayloadShare =
      double(net::kRtpPayload) / double(net::kRtpWire);
  encoder_.set_bitrate(d.target_bitrate * kPayloadShare);
  encoder_.set_fps(d.target_fps);
}

void StreamSender::on_frame(const Frame& frame) {
  auto pkts = packetizer_.packetize(frame, sim_.now());
  for (auto& p : pkts) send_queue_.push_back(std::move(p));
  drain_send_queue();
}

void StreamSender::drain_send_queue() {
  while (!send_queue_.empty()) {
    const Time now = sim_.now();
    if (now < next_send_time_) {
      pace_timer_.arm(next_send_time_ - now);
      return;
    }
    net::PacketPtr pkt = std::move(send_queue_.front());
    send_queue_.pop_front();
    // Stamp the wire-send time (WebRTC abs-send-time semantics): one-way
    // delay must measure the network, not the sender's own pacing queue.
    pkt->created = now;
    bytes_sent_ += pkt->size();

    const Bandwidth pace_rate = encoder_.bitrate() * opts_.burst_factor;
    next_send_time_ = std::max(next_send_time_, now) +
                      pace_rate.transmit_time(pkt->size());
    out_->handle_packet(std::move(pkt));
  }
}

void StreamSender::handle_packet(net::PacketPtr pkt) {
  const auto* fb = std::get_if<net::FeedbackHeader>(&pkt->header);
  if (fb == nullptr || !running_) return;

  // A report covering zero packets (total blackout) carries no signal: its
  // OWD fields read zero (which would corrupt the base-delay min filter)
  // and its loss reads zero (which would let the controller ramp into a
  // dead link).  Hold the current rate until data flows again.
  if (fb->window_recv_pkts == 0) {
    ++stalled_windows_;
    resync_loss_ = true;
    return;
  }

  base_owd_ns_.update(fb->min_owd.count(), sim_.now());

  double loss = std::isfinite(fb->window_loss_fraction)
                    ? std::clamp(fb->window_loss_fraction, 0.0, 1.0)
                    : 0.0;
  if (resync_loss_) {
    // First report after a blackout: its loss figure aggregates the whole
    // outage's sequence gap, measuring the outage rather than the recovered
    // path.  Resync the loss baseline (delay and rate are still genuine) so
    // one stale gap does not slam the controller to its floor.
    loss = 0.0;
    resync_loss_ = false;
  }

  FeedbackSnapshot snap;
  snap.now = sim_.now();
  snap.send_rate = encoder_.bitrate();
  snap.recv_rate = Bandwidth(std::max<std::int64_t>(fb->recv_rate_bps, 0));
  snap.loss_fraction = loss;
  snap.base_delay = Time(base_owd_ns_.get_or(fb->min_owd.count()));
  snap.queuing_delay =
      std::max(kTimeZero, fb->avg_owd - snap.base_delay);
  snap.valid = true;
  last_qdelay_ = snap.queuing_delay;

  apply(controller_->on_feedback(snap));
}

}  // namespace cgs::stream
