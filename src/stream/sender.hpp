// Game-streaming server: encoder + packetiser + pacer + rate control.
//
// Consumes receiver feedback (FeedbackHeader packets) and retunes the
// encoder through the pluggable RateController — the per-system model.
#pragma once

#include <deque>
#include <memory>

#include "net/packet.hpp"
#include "sim/timer.hpp"
#include "stream/controller.hpp"
#include "stream/frame_source.hpp"
#include "stream/packetizer.hpp"
#include "util/filters.hpp"

namespace cgs::stream {

class StreamSender final : public net::PacketSink {
 public:
  struct Options {
    net::FlowId flow = 0;
    /// Packets of one frame are paced at this multiple of the target
    /// bitrate, so a frame occupies roughly 1/burst_factor of its interval
    /// (game streams send sub-frame bursts, per Xu & Claypool 2021).
    double burst_factor = 1.9;
    /// Window for tracking the base (uncongested) one-way delay.
    Time base_delay_window = std::chrono::seconds(60);
  };

  StreamSender(sim::Simulator& sim, net::PacketFactory& factory, Options opts,
               FrameSourceConfig encoder_cfg,
               std::unique_ptr<RateController> controller, Pcg32 rng);

  /// Downstream path entry; must outlive the sender.
  void set_output(net::PacketSink* out) { out_ = out; }

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Feedback packets arrive here (wired from the upstream path).
  void handle_packet(net::PacketPtr pkt) override;

  [[nodiscard]] Bandwidth target_bitrate() const { return encoder_.bitrate(); }
  [[nodiscard]] double target_fps() const { return encoder_.fps(); }
  [[nodiscard]] RateController& controller() { return *controller_; }
  [[nodiscard]] ByteSize bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] net::FlowId flow() const { return opts_.flow; }
  [[nodiscard]] Time last_queuing_delay() const { return last_qdelay_; }
  /// Feedback reports that covered zero received packets (link outage);
  /// the controller is frozen for those windows rather than fed zeros.
  [[nodiscard]] std::uint64_t stalled_windows() const {
    return stalled_windows_;
  }

 private:
  void on_frame(const Frame& frame);
  void drain_send_queue();
  void apply(const ControlDecision& d);

  sim::Simulator& sim_;
  Options opts_;
  net::PacketSink* out_ = nullptr;

  FrameSource encoder_;
  Packetizer packetizer_;
  std::unique_ptr<RateController> controller_;

  std::deque<net::PacketPtr> send_queue_;
  sim::OneShotTimer pace_timer_;
  Time next_send_time_ = kTimeZero;
  bool running_ = false;

  WindowedMinFilter<std::int64_t> base_owd_ns_;
  Time last_qdelay_ = kTimeZero;
  std::uint64_t stalled_windows_ = 0;
  // Set while recovering from a blackout: the next non-empty report's loss
  // figure spans the outage gap and must not be fed to the controller.
  bool resync_loss_ = false;

  ByteSize bytes_sent_{0};
};

}  // namespace cgs::stream
