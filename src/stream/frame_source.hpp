// Game video encoder model.
//
// Emits encoded frames at the current target frame rate, sized so the
// stream averages the current target bitrate.  Frame sizes follow a
// lognormal distribution (scene-dependent variance, seeded — the simulation
// analogue of the paper's scripted, repeatable Ys gameplay) with periodic
// larger keyframes.  The rate controller retunes bitrate/fps between frames.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/timer.hpp"
#include "stream/frame.hpp"
#include "util/rng.hpp"

namespace cgs::stream {

struct FrameSourceConfig {
  double fps = 60.0;
  Bandwidth bitrate = Bandwidth::mbps(20.0);
  double size_cv = 0.22;        // coefficient of variation of P-frame sizes
  int keyframe_interval = 300;  // frames between keyframes (5 s @ 60 f/s)
  double keyframe_scale = 2.5;  // keyframe size vs mean frame size
};

class FrameSource {
 public:
  using FrameHandler = std::function<void(const Frame&)>;

  FrameSource(sim::Simulator& sim, FrameSourceConfig cfg, Pcg32 rng,
              FrameHandler on_frame);

  void start();
  void stop();

  void set_bitrate(Bandwidth rate) { cfg_.bitrate = rate; }
  void set_fps(double fps);
  [[nodiscard]] Bandwidth bitrate() const { return cfg_.bitrate; }
  [[nodiscard]] double fps() const { return cfg_.fps; }
  [[nodiscard]] std::uint32_t frames_emitted() const { return next_id_; }

 private:
  void emit_frame();
  [[nodiscard]] Time frame_interval() const {
    return from_seconds(1.0 / cfg_.fps);
  }

  sim::Simulator& sim_;
  FrameSourceConfig cfg_;
  Pcg32 rng_;
  FrameHandler on_frame_;
  sim::OneShotTimer tick_;
  bool running_ = false;
  std::uint32_t next_id_ = 0;
  int frames_since_key_ = 0;
};

}  // namespace cgs::stream
