#include "stream/display.hpp"

#include <algorithm>

namespace cgs::stream {

void DisplayModel::frame_presented(std::uint32_t /*frame_id*/, Time at) {
  presented_.push_back(at);
}

void DisplayModel::frame_dropped(std::uint32_t /*frame_id*/, Time /*at*/) {
  ++dropped_;
}

double DisplayModel::fps_over(Time from, Time to) const {
  if (to <= from) return 0.0;
  const auto lo = std::lower_bound(presented_.begin(), presented_.end(), from);
  const auto hi = std::lower_bound(presented_.begin(), presented_.end(), to);
  const auto count = double(std::distance(lo, hi));
  return count / to_seconds(to - from);
}

}  // namespace cgs::stream
