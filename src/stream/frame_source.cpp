#include "stream/frame_source.hpp"

#include <algorithm>

namespace cgs::stream {

FrameSource::FrameSource(sim::Simulator& sim, FrameSourceConfig cfg, Pcg32 rng,
                         FrameHandler on_frame)
    : sim_(sim),
      cfg_(cfg),
      rng_(rng),
      on_frame_(std::move(on_frame)),
      tick_(sim, [this] { emit_frame(); }) {}

void FrameSource::start() {
  if (running_) return;
  running_ = true;
  tick_.arm(kTimeZero);
}

void FrameSource::stop() {
  running_ = false;
  tick_.cancel();
}

void FrameSource::set_fps(double fps) {
  cfg_.fps = std::clamp(fps, 1.0, 240.0);
}

void FrameSource::emit_frame() {
  if (!running_) return;

  const double mean_bytes =
      double(cfg_.bitrate.bits_per_sec()) / cfg_.fps / 8.0;
  const bool key = frames_since_key_ >= cfg_.keyframe_interval;
  frames_since_key_ = key ? 0 : frames_since_key_ + 1;

  double bytes = rng_.lognormal_by_moments(mean_bytes,
                                           cfg_.size_cv * mean_bytes);
  if (key) bytes *= cfg_.keyframe_scale;
  bytes = std::max(bytes, 200.0);

  Frame f;
  f.id = next_id_++;
  f.bytes = ByteSize(std::int64_t(bytes));
  f.keyframe = key;
  f.gen_time = sim_.now();
  on_frame_(f);

  tick_.arm(frame_interval());
}

}  // namespace cgs::stream
