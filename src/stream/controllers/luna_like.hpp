// "Luna-like" rate controller.
//
// Models the congestion-response class the paper measures for Amazon Luna: a
// throughput-matching controller (TFRC/HLS-ladder flavour).  It sets its
// rate from the receiver-measured goodput, backs off on moderate loss or
// delay growth, and climbs back only after a sustained clean period.
// Consequences reproduced from the paper: fair against Cubic (whose loss
// episodes are short, leaving clean windows to climb in), suppressed by BBR
// (loss-blind occupancy keeps shaving its goodput, ratcheting the match
// down), slow — sometimes failing — recovery after a BBR flow departs, and
// a bitrate-tier-driven encoder frame-rate ladder (22 f/s at the bottom).
#pragma once

#include "stream/controller.hpp"
#include "stream/delay_detector.hpp"

namespace cgs::stream {

struct LunaLikeConfig {
  Bandwidth max_bitrate = Bandwidth::mbps(23.7);  // Table 1 baseline
  Bandwidth min_bitrate = Bandwidth::mbps(1.5);
  Bandwidth start_bitrate = Bandwidth::mbps(10.0);
  // Luna's delay signal is a latency budget on the *standing* queue: the
  // windowed-minimum queuing delay must return to (near) zero within the
  // window.  Cubic drains the queue after every loss episode, resetting the
  // minimum and leaving Luna clean climb windows; BBR parks a standing
  // queue that never drains, pinning the trigger — the paper's
  // Luna-loses-to-BBR signature, at every queue size where a standing
  // queue fits (2x/7x), while at 0.5x persistent BBR loss does the same.
  Time standing_window = std::chrono::seconds(3);
  Time standing_floor = std::chrono::milliseconds(12);
  DelayDetectorConfig detector{
      .norm_gain = 0.05,
      .rel_factor = 99.0,  // relative branch disabled
      .abs_margin = std::chrono::milliseconds(5),
      .hard_limit = std::chrono::milliseconds(30)};  // absolute safety only
  double loss_threshold = 0.02;
  double backoff_factor = 0.92;          // rate <- factor*(1-loss)*recv_rate
  int clean_intervals_to_climb = 10;     // ~1 s of clean feedback
  double climb_factor = 1.018;           // multiplicative per interval
  Bandwidth climb_floor = Bandwidth::kbps(40);
  // Encoder ladder: fps by absolute bitrate tier (streaming-video style).
  Bandwidth fps60_at = Bandwidth::mbps(8.0);
  Bandwidth fps50_at = Bandwidth::mbps(5.5);
  Bandwidth fps40_at = Bandwidth::mbps(3.5);
  // below fps40_at -> 30 f/s
};

class LunaLikeController final : public RateController {
 public:
  explicit LunaLikeController(LunaLikeConfig cfg);

  ControlDecision on_feedback(const FeedbackSnapshot& fb) override;
  [[nodiscard]] ControlDecision current() const override;
  [[nodiscard]] std::string_view name() const override { return "luna-like"; }

 private:
  [[nodiscard]] double fps_for(Bandwidth rate) const;

  LunaLikeConfig cfg_;
  Bandwidth rate_;
  RelativeDelayDetector detector_;
  StandingQueueDetector standing_;
  int clean_streak_ = 0;
};

}  // namespace cgs::stream
