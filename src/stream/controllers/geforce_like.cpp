#include "stream/controllers/geforce_like.hpp"

#include <algorithm>

namespace cgs::stream {

GeForceLikeController::GeForceLikeController(GeForceLikeConfig cfg)
    : cfg_(cfg),
      rate_(cfg.start_bitrate),
      detector_(cfg.detector),
      standing_(cfg.standing_window, cfg.standing_floor) {}

ControlDecision GeForceLikeController::current() const {
  // GeForce holds the 60 f/s target and trades resolution instead
  // (Table 5: resilient frame rates under every condition).
  return {rate_, 60.0};
}

ControlDecision GeForceLikeController::on_feedback(const FeedbackSnapshot& fb) {
  if (!fb.valid) return current();

  const auto clamp_rate = [this](Bandwidth r) {
    return std::clamp(r, cfg_.min_bitrate, cfg_.max_bitrate);
  };

  const bool congested = detector_.overused(fb.queuing_delay) ||
                         standing_.standing(fb.queuing_delay, fb.now) ||
                         fb.loss_fraction > cfg_.loss_threshold;
  if (congested) {
    const Bandwidth target = std::max(fb.recv_rate * cfg_.backoff_factor,
                                      rate_ * 0.5);
    rate_ = clamp_rate(std::min(rate_, target));
    hold_until_ = fb.now + cfg_.hold_after_backoff;
  } else if (fb.now >= hold_until_) {
    rate_ = clamp_rate(rate_ + cfg_.increase_step);
  }
  return {rate_, 60.0};
}

}  // namespace cgs::stream
