#include "stream/controllers/stadia_like.hpp"

#include <algorithm>

namespace cgs::stream {

StadiaLikeController::StadiaLikeController(StadiaLikeConfig cfg)
    : cfg_(cfg),
      rate_(cfg.start_bitrate),
      detector_(cfg.detector),
      standing_(cfg.standing_window, cfg.standing_floor) {}

ControlDecision StadiaLikeController::current() const {
  return {rate_, fps_};
}

double StadiaLikeController::pick_fps() const {
  const double loss = loss_avg_.value_or(0.0);
  if (loss >= cfg_.loss_for_40fps) return 40.0;
  if (loss >= cfg_.loss_for_50fps) return 50.0;
  return 60.0;
}

ControlDecision StadiaLikeController::on_feedback(const FeedbackSnapshot& fb) {
  if (!fb.valid) return current();
  loss_avg_.update(fb.loss_fraction);

  const auto clamp_rate = [this](Bandwidth r) {
    return std::clamp(r, cfg_.min_bitrate, cfg_.max_bitrate);
  };

  const bool overuse = detector_.overused(fb.queuing_delay) ||
                       standing_.standing(fb.queuing_delay, fb.now);
  if (overuse) {
    // Match a backed-off fraction of what actually got through, but never
    // halve more than once per step: a 100 ms recv_rate dip during a
    // competing flow's startup flood is not a steady-state signal.
    const Bandwidth target = std::max(fb.recv_rate * cfg_.backoff_factor,
                                      rate_ * 0.5);
    rate_ = clamp_rate(std::min(rate_, target));
    hold_until_ = fb.now + cfg_.hold_after_backoff;
  } else if (fb.loss_fraction > cfg_.loss_threshold) {
    // Penalise only the loss in excess of the tolerance, multiplicatively
    // on the current rate.  Anchoring on recv_rate here would collapse the
    // stream during a competitor's startup flood (recv momentarily
    // halves), handing BBR the bistable shallow-buffer equilibrium — the
    // opposite of the near-fair split the paper measures.
    const double excess = fb.loss_fraction - cfg_.loss_threshold;
    rate_ = clamp_rate(rate_ * (1.0 - cfg_.loss_backoff_scale * excess));
  } else if (fb.now >= hold_until_) {
    const Bandwidth bumped = std::max(rate_ * cfg_.increase_factor,
                                      rate_ + cfg_.increase_floor);
    rate_ = clamp_rate(bumped);
  }

  fps_ = pick_fps();
  return {rate_, fps_};
}

}  // namespace cgs::stream
