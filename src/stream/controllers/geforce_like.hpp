// "GeForce-Now-like" rate controller.
//
// Models the congestion-response class the paper measures for NVidia GeForce
// Now: strongly congestion-averse.  A tight relative-delay detector with a
// low hard ceiling plus a light-loss trigger back the rate off hard; the
// climb back is a slow additive ramp after a hold period.  Consequences
// reproduced from the paper: always below the fair share against Cubic, even
// lower against BBR (persistent standing queue + loss-blind probing keep the
// triggers firing), slowest to settle, but the encoder holds 60 f/s and the
// frame rate stays resilient (strong FEC in the profile).
#pragma once

#include "stream/controller.hpp"
#include "stream/delay_detector.hpp"

namespace cgs::stream {

struct GeForceLikeConfig {
  Bandwidth max_bitrate = Bandwidth::mbps(24.5);  // Table 1 baseline
  Bandwidth min_bitrate = Bandwidth::mbps(4.0);
  Bandwidth start_bitrate = Bandwidth::mbps(12.0);
  DelayDetectorConfig detector{
      .norm_gain = 0.05,
      .rel_factor = 1.4,
      .abs_margin = std::chrono::milliseconds(4),
      .hard_limit = std::chrono::milliseconds(28)};
  // Standing-queue budget (see delay_detector.hpp): GeForce also defers to
  // a queue that never drains — BBR's signature — on top of its gradient
  // and loss triggers.
  Time standing_window = std::chrono::seconds(3);
  Time standing_floor = std::chrono::milliseconds(13);
  double loss_threshold = 0.020;         // light loss already triggers
  double backoff_factor = 0.80;          // rate <- factor * recv_rate
  Time hold_after_backoff = std::chrono::milliseconds(1000);
  Bandwidth increase_step = Bandwidth::kbps(100);  // additive per interval
};

class GeForceLikeController final : public RateController {
 public:
  explicit GeForceLikeController(GeForceLikeConfig cfg);

  ControlDecision on_feedback(const FeedbackSnapshot& fb) override;
  [[nodiscard]] ControlDecision current() const override;
  [[nodiscard]] std::string_view name() const override { return "geforce-like"; }

 private:
  GeForceLikeConfig cfg_;
  Bandwidth rate_;
  RelativeDelayDetector detector_;
  StandingQueueDetector standing_;
  Time hold_until_ = kTimeZero;
};

}  // namespace cgs::stream
