// "Stadia-like" rate controller.
//
// Models the congestion-response class the paper measures for Google Stadia:
// a GCC-flavoured controller (Carrascosa & Bellalta observe WebRTC/GCC
// behaviour for Stadia) reacting to delay *growth* (relative detector) and
// to heavy loss only, with a hard queuing-delay ceiling an interactive
// service cannot tolerate, quick multiplicative probing back up.
// Consequences reproduced from the paper: beats Cubic at small queues (loss
// doesn't scare it, Cubic backs off first), defers at bloated queues (the
// hard delay ceiling trips), roughly fair against BBR (whose probe cycles
// perturb delay but cap the queue), fastest response/recovery of the three.
#pragma once

#include "stream/controller.hpp"
#include "stream/delay_detector.hpp"
#include "util/filters.hpp"

namespace cgs::stream {

struct StadiaLikeConfig {
  Bandwidth max_bitrate = Bandwidth::mbps(27.5);  // Table 1 baseline
  Bandwidth min_bitrate = Bandwidth::mbps(2.0);
  Bandwidth start_bitrate = Bandwidth::mbps(12.0);
  DelayDetectorConfig detector{
      .norm_gain = 0.05,
      .rel_factor = 1.6,
      .abs_margin = std::chrono::milliseconds(6),
      .hard_limit = std::chrono::milliseconds(60)};
  // Standing-queue budget: generous (Stadia tolerates a standing queue far
  // longer than GeForce/Luna) but trips when the queue never drains below
  // ~18 ms for seconds — which happens when Stadia itself is hogging the
  // link or a BBR competitor parks a deep standing queue.
  Time standing_window = std::chrono::seconds(4);
  Time standing_floor = std::chrono::milliseconds(18);
  double backoff_factor = 0.85;          // rate <- factor * recv_rate
  double loss_threshold = 0.08;          // GCC: only heavy loss matters
  double loss_backoff_scale = 1.0;       // rate *= 1 - scale * excess_loss
  Time hold_after_backoff = std::chrono::milliseconds(600);
  double increase_factor = 1.008;        // multiplicative, per interval
  Bandwidth increase_floor = Bandwidth::kbps(80);   // additive floor/interval
  // Encoder fps policy: Stadia lowers frame rate when it sees loss, to
  // spend the bits on per-frame quality (paper §4.3 / Table 5 pattern).
  double loss_for_50fps = 0.004;
  double loss_for_40fps = 0.025;
};

class StadiaLikeController final : public RateController {
 public:
  explicit StadiaLikeController(StadiaLikeConfig cfg);

  ControlDecision on_feedback(const FeedbackSnapshot& fb) override;
  [[nodiscard]] ControlDecision current() const override;
  [[nodiscard]] std::string_view name() const override { return "stadia-like"; }

 private:
  [[nodiscard]] double pick_fps() const;

  StadiaLikeConfig cfg_;
  Bandwidth rate_;
  RelativeDelayDetector detector_;
  StandingQueueDetector standing_;
  Time hold_until_ = kTimeZero;
  Ewma loss_avg_{0.25};  // smoothed loss driving the fps ladder
  double fps_ = 60.0;
};

}  // namespace cgs::stream
