#include "stream/controllers/luna_like.hpp"

#include <algorithm>

namespace cgs::stream {

LunaLikeController::LunaLikeController(LunaLikeConfig cfg)
    : cfg_(cfg),
      rate_(cfg.start_bitrate),
      detector_(cfg.detector),
      standing_(cfg.standing_window, cfg.standing_floor) {}

double LunaLikeController::fps_for(Bandwidth rate) const {
  if (rate >= cfg_.fps60_at) return 60.0;
  if (rate >= cfg_.fps50_at) return 50.0;
  if (rate >= cfg_.fps40_at) return 40.0;
  return 30.0;
}

ControlDecision LunaLikeController::current() const {
  return {rate_, fps_for(rate_)};
}

ControlDecision LunaLikeController::on_feedback(const FeedbackSnapshot& fb) {
  if (!fb.valid) return current();

  const auto clamp_rate = [this](Bandwidth r) {
    return std::clamp(r, cfg_.min_bitrate, cfg_.max_bitrate);
  };

  const bool hard_over = detector_.overused(fb.queuing_delay);
  const bool standing = standing_.standing(fb.queuing_delay, fb.now);
  const bool dirty =
      hard_over || standing || fb.loss_fraction > cfg_.loss_threshold;
  if (dirty) {
    clean_streak_ = 0;
    const Bandwidth matched = std::max(
        fb.recv_rate * ((1.0 - fb.loss_fraction) * cfg_.backoff_factor),
        rate_ * 0.6);
    rate_ = clamp_rate(std::min(rate_, matched));
  } else {
    ++clean_streak_;
    if (clean_streak_ >= cfg_.clean_intervals_to_climb) {
      const Bandwidth bumped = std::max(rate_ * cfg_.climb_factor,
                                        rate_ + cfg_.climb_floor);
      rate_ = clamp_rate(bumped);
    }
  }
  return {rate_, fps_for(rate_)};
}

}  // namespace cgs::stream
