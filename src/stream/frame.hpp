// Encoded video frame metadata flowing from encoder to packetiser.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace cgs::stream {

struct Frame {
  std::uint32_t id = 0;
  ByteSize bytes{0};
  bool keyframe = false;
  Time gen_time = kTimeZero;  // when the encoder emitted it
};

}  // namespace cgs::stream
