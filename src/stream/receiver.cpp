#include "stream/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cgs::stream {

StreamReceiver::StreamReceiver(sim::Simulator& sim,
                               net::PacketFactory& factory, Options opts)
    : sim_(sim),
      factory_(factory),
      opts_(opts),
      feedback_timer_(sim, opts.feedback_interval,
                      [this] { send_feedback(); }) {}

void StreamReceiver::start() { feedback_timer_.start(); }
void StreamReceiver::stop() { feedback_timer_.stop(); }

bool StreamReceiver::SeqWindow::accept(std::uint32_t seq) {
  if (!any_) {
    any_ = true;
    max_ = seq;
    set(seq);
    return true;
  }
  if (seq > max_) {
    // Advance the window: bits for the skipped (not-yet-seen) sequence
    // numbers must be cleared before they can be claimed by `seq % kBits`.
    if (seq - max_ >= kBits) {
      bits_.fill(0);
    } else {
      for (std::uint32_t s = max_ + 1; s != seq; ++s) clear(s);
      clear(seq);
    }
    max_ = seq;
    set(seq);
    return true;
  }
  if (max_ - seq >= kBits) return false;  // too old to distinguish from replay
  if (test(seq)) return false;            // duplicate
  set(seq);
  return true;
}

std::uint64_t StreamReceiver::packets_lost() const {
  if (!any_seq_) return 0;
  const std::uint64_t expected = std::uint64_t(highest_seq_) + 1;
  return expected > cum_recv_ ? expected - cum_recv_ : 0;
}

double StreamReceiver::loss_rate() const {
  if (!any_seq_) return 0.0;
  const double expected = double(highest_seq_) + 1.0;
  return double(packets_lost()) / expected;
}

void StreamReceiver::handle_packet(net::PacketPtr pkt) {
  const auto* h = std::get_if<net::RtpHeader>(&pkt->header);
  if (h == nullptr) return;
  // Replay/duplicate suppression first: a duplicated or ancient packet must
  // not inflate receive counters, rates, or frame-completion counts.
  if (!seq_window_.accept(h->seq)) {
    ++dups_;
    return;
  }
  const Time now = sim_.now();

  // Sequence/byte accounting.
  highest_seq_ = any_seq_ ? std::max(highest_seq_, h->seq) : h->seq;
  any_seq_ = true;
  ++cum_recv_;
  ++win_recv_;
  bytes_total_ += pkt->size();
  win_bytes_ += pkt->size();

  const Time owd = now - pkt->created;
  win_owd_sum_ += owd;
  win_owd_min_ = std::min(win_owd_min_, owd);

  // Frame assembly.  The playout deadline is relative to the frame's first
  // packet arrival (de-jitter buffer semantics): a uniformly-delayed stream
  // still displays every frame — what degrades frames is loss beyond the
  // FEC budget or intra-frame delay spread, not bufferbloat per se.
  if (any_decided_ && h->frame_id <= decided_max_ &&
      !frames_.contains(h->frame_id)) {
    return;  // straggler for an already-decided frame
  }
  auto [it, inserted] = frames_.try_emplace(h->frame_id);
  FrameAsm& fa = it->second;
  if (inserted) {
    fa.expected = h->pkts_in_frame;
    fa.gen_time = h->frame_gen_time;
    // Decodable once enough packets arrive to beat the FEC erasure budget
    // (every frame ships with at least one repair packet's worth of FEC).
    // Both inputs are fixed for the frame's lifetime, so the threshold is
    // computed once here rather than on every packet.
    const auto budget = std::uint16_t(
        opts_.fec_rate > 0.0
            ? std::ceil(opts_.fec_rate * double(fa.expected))
            : 0.0);
    fa.needed =
        std::uint16_t(fa.expected > budget ? fa.expected - budget : 1);
    const Time decide_at = now + opts_.playout_deadline;
    const std::uint32_t id = h->frame_id;
    sim_.schedule_at(decide_at, [this, id] { decide_frame(id); });
  }
  if (fa.decided) return;
  ++fa.received;
  if (fa.received >= fa.needed && !fa.complete) {
    fa.complete = true;
    fa.complete_at = now;
  }
}

void StreamReceiver::decide_frame(std::uint32_t frame_id) {
  auto it = frames_.find(frame_id);
  if (it == frames_.end() || it->second.decided) return;
  FrameAsm& fa = it->second;
  fa.decided = true;
  if (fa.complete) {
    display_.frame_presented(frame_id, fa.complete_at);
  } else {
    ++concealed_;
    display_.frame_dropped(frame_id, sim_.now());
  }
  decided_max_ = any_decided_ ? std::max(decided_max_, frame_id) : frame_id;
  any_decided_ = true;
  frames_.erase(it);
}

void StreamReceiver::send_feedback() {
  if (out_ == nullptr) return;

  net::FeedbackHeader fb;
  fb.highest_seq = highest_seq_;
  fb.cum_recv_pkts = cum_recv_;
  fb.report_time = sim_.now();

  // Loss over this interval from sequence-number progress.
  std::uint64_t expected = 0;
  if (any_seq_) {
    if (win_seq_base_valid_) {
      expected = highest_seq_ > win_seq_base_ ? highest_seq_ - win_seq_base_ : 0;
    } else {
      expected = std::uint64_t(highest_seq_) + 1;
    }
  }
  if (expected > 0) {
    const double lost = expected > win_recv_
                            ? double(expected - win_recv_)
                            : 0.0;
    fb.window_loss_fraction = std::clamp(lost / double(expected), 0.0, 1.0);
  }
  fb.cum_lost_pkts = packets_lost();
  fb.window_recv_pkts = std::uint32_t(std::min<std::uint64_t>(
      win_recv_, std::numeric_limits<std::uint32_t>::max()));

  fb.recv_rate_bps =
      rate_of(win_bytes_, opts_.feedback_interval).bits_per_sec();
  if (win_recv_ > 0) {
    fb.avg_owd = win_owd_sum_ / std::int64_t(win_recv_);
    fb.min_owd = win_owd_min_;
  }

  out_->handle_packet(factory_.make(opts_.flow,
                                    net::TrafficClass::kStreamInput,
                                    net::kFeedbackWire, sim_.now(), fb));

  // Reset interval accumulators.
  win_recv_ = 0;
  win_bytes_ = ByteSize(0);
  win_owd_sum_ = kTimeZero;
  win_owd_min_ = kTimeInfinite;
  win_seq_base_ = highest_seq_;
  win_seq_base_valid_ = any_seq_;
}

}  // namespace cgs::stream
