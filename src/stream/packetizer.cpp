#include "stream/packetizer.hpp"

namespace cgs::stream {

std::vector<net::PacketPtr> Packetizer::packetize(const Frame& frame,
                                                  Time now) {
  const std::int64_t payload = net::kRtpPayload;
  const auto n_pkts =
      std::uint16_t((frame.bytes.bytes() + payload - 1) / payload);

  std::vector<net::PacketPtr> pkts;
  pkts.reserve(n_pkts);
  std::int64_t remaining = frame.bytes.bytes();
  for (std::uint16_t i = 0; i < n_pkts; ++i) {
    const std::int64_t chunk = std::min(remaining, payload);
    remaining -= chunk;

    net::RtpHeader h;
    h.seq = next_seq_++;
    h.frame_id = frame.id;
    h.pkt_index = i;
    h.pkts_in_frame = n_pkts;
    h.keyframe = frame.keyframe;
    h.frame_gen_time = frame.gen_time;

    pkts.push_back(factory_->make(
        flow_, net::TrafficClass::kGameStream,
        std::int32_t(chunk) + net::kIpUdpOverhead, now, h));
  }
  return pkts;
}

}  // namespace cgs::stream
