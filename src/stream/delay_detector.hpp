// Relative-delay overuse detection shared by the system controllers.
//
// Absolute queuing-delay thresholds starve against loss-based TCP: Cubic
// parks a standing queue at the bottleneck, the absolute signal stays high,
// and the stream death-spirals to its floor.  What GCC-class controllers
// (and, per the paper's measurements, the commercial systems) actually react
// to is delay *growth* relative to the recent norm: a stable standing queue
// is tolerated, a swelling one is overuse.  The detector keeps a slow EWMA
// of queuing delay and flags overuse when the current sample exceeds
// rel_factor * norm + abs_margin.
#pragma once

#include <algorithm>

#include "util/filters.hpp"
#include "util/units.hpp"

namespace cgs::stream {

struct DelayDetectorConfig {
  double norm_gain = 0.05;     // EWMA gain per feedback interval (~2 s memory)
  double rel_factor = 1.5;     // overuse when delay > factor * norm + margin
  Time abs_margin = std::chrono::milliseconds(5);
  Time hard_limit = kTimeInfinite;  // absolute ceiling that always trips
};

class RelativeDelayDetector {
 public:
  explicit RelativeDelayDetector(DelayDetectorConfig cfg) : cfg_(cfg), norm_(cfg.norm_gain) {}

  /// Feed one queuing-delay sample; returns true on overuse.
  bool overused(Time queuing_delay) {
    const double sample_ms = to_seconds(queuing_delay) * 1e3;
    const double norm_ms = norm_.value_or(sample_ms);
    const double margin_ms = to_seconds(cfg_.abs_margin) * 1e3;
    const bool over =
        sample_ms > cfg_.rel_factor * norm_ms + margin_ms ||
        (cfg_.hard_limit != kTimeInfinite && queuing_delay > cfg_.hard_limit);
    // The norm absorbs the sample either way, but slower while overusing so
    // a long ramp does not normalise itself too quickly.
    if (over) {
      norm_.update(norm_ms + 0.3 * (sample_ms - norm_ms));
    } else {
      norm_.update(sample_ms);
    }
    return over;
  }

  [[nodiscard]] double norm_ms() const { return norm_.value_or(0.0); }
  void reset() { norm_.reset(); }

 private:
  DelayDetectorConfig cfg_;
  Ewma norm_;
};

/// Standing-queue detection: flags when the *minimum* queuing delay over a
/// sliding window stays above a floor — i.e. the bottleneck queue never
/// drains.  Loss-based TCP (Cubic) periodically drains the queue after each
/// loss episode, resetting the windowed min; BBR parks a standing queue
/// (~1 BDP of inflight cap) that never drains.  This is the signal that
/// separates "competing with Cubic" from "competing with BBR" for
/// latency-budgeted controllers, and it drives the paper's Luna/GeForce
/// vs-BBR suppression patterns.
class StandingQueueDetector {
 public:
  StandingQueueDetector(Time window, Time floor)
      : floor_(floor), min_ns_(window) {}

  /// Feed one queuing-delay sample; returns true while the windowed minimum
  /// sits above the floor.
  bool standing(Time queuing_delay, Time now) {
    min_ns_.update(queuing_delay.count(), now);
    return Time(min_ns_.get_or(0)) > floor_;
  }

  [[nodiscard]] Time floor() const { return floor_; }
  void reset() { min_ns_.reset(); }

 private:
  Time floor_;
  WindowedMinFilter<std::int64_t> min_ns_;
};

}  // namespace cgs::stream
