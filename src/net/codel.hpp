// CoDel (RFC 8289) and FQ-CoDel (RFC 8290) queue disciplines.
//
// The paper uses a drop-tail router and names FQ-CoDel as future work (§5);
// these implementations back the `ablation_aqm` bench that explores it.
#pragma once

#include <map>

#include "net/queue.hpp"
#include "util/ring_buffer.hpp"

namespace cgs::net {

struct CodelParams {
  Time target = std::chrono::milliseconds(5);     // acceptable sojourn
  Time interval = std::chrono::milliseconds(100); // sliding window
  ByteSize capacity = ByteSize(10 * 1500 * 100);  // hard byte limit
};

/// Controlled-delay AQM: drops at dequeue when sojourn time has exceeded
/// `target` for at least `interval`, at a rate increasing with sqrt(count).
class CodelQueue final : public Queue {
 public:
  explicit CodelQueue(CodelParams params) : params_(params) {}

  void enqueue(PacketPtr pkt, Time now) override;
  PacketPtr dequeue(Time now) override;

  [[nodiscard]] ByteSize byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return q_.size(); }
  [[nodiscard]] std::string_view name() const override { return "codel"; }

 private:
  /// Pop the head and decide whether CoDel would drop it.
  PacketPtr pop_head();
  [[nodiscard]] Time control_law(Time t) const;
  bool should_drop(const Packet& pkt, Time now);

  CodelParams params_;
  util::RingBuffer<PacketPtr> q_;
  ByteSize bytes_{0};

  // CoDel state machine (RFC 8289 §5).
  Time first_above_time_ = kTimeZero;
  Time drop_next_ = kTimeZero;
  std::uint32_t count_ = 0;
  std::uint32_t last_count_ = 0;
  bool dropping_ = false;
};

/// Flow-queued CoDel: packets hash to per-flow sub-queues, each running the
/// CoDel state machine, serviced by deficit round robin with new-flow
/// priority (RFC 8290, simplified: no hash collisions since FlowIds are
/// unique; quantum = one MTU).
class FqCodelQueue final : public Queue {
 public:
  explicit FqCodelQueue(CodelParams params, ByteSize quantum = ByteSize(1514))
      : params_(params), quantum_(quantum) {}

  void enqueue(PacketPtr pkt, Time now) override;
  PacketPtr dequeue(Time now) override;

  [[nodiscard]] ByteSize byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return count_; }
  [[nodiscard]] std::string_view name() const override { return "fq_codel"; }

 private:
  struct SubQueue {
    CodelQueue codel;
    std::int64_t deficit = 0;
    bool active = false;
    explicit SubQueue(CodelParams p) : codel(p) {}
  };

  SubQueue& sub(FlowId flow);

  CodelParams params_;
  ByteSize quantum_;
  std::map<FlowId, SubQueue> flows_;
  util::RingBuffer<FlowId> new_flows_;
  util::RingBuffer<FlowId> old_flows_;
  ByteSize bytes_{0};
  std::size_t count_ = 0;
  // True while a sub-queue enqueue runs: an overflow drop there concerns a
  // packet not yet counted in the aggregate, so the drop handler must not
  // decrement the aggregate counters.
  bool in_enqueue_ = false;
};

}  // namespace cgs::net
