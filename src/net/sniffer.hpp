// Packet observation taps — the simulator's Wireshark.
//
// Links expose a Sniffer; collectors subscribe to the events they need.
// Subscribers must outlive the link (the measurement layer guarantees this
// by owning both).
#pragma once

#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"

namespace cgs::net {

class Sniffer {
 public:
  using PacketFn = std::function<void(const Packet&, Time)>;
  using DropFn = std::function<void(const Packet&, DropReason, Time)>;

  /// Packet handed to the queue (before any drop decision).
  void on_arrival(PacketFn fn) { arrival_.push_back(std::move(fn)); }
  /// Packet dropped by the queue discipline.
  void on_drop(DropFn fn) { drop_.push_back(std::move(fn)); }
  /// Packet starts serialisation onto the wire.
  void on_transmit(PacketFn fn) { transmit_.push_back(std::move(fn)); }
  /// Packet fully delivered to the far end.
  void on_deliver(PacketFn fn) { deliver_.push_back(std::move(fn)); }

  void notify_arrival(const Packet& p, Time t) const { for (auto& f : arrival_) f(p, t); }
  void notify_drop(const Packet& p, DropReason r, Time t) const { for (auto& f : drop_) f(p, r, t); }
  void notify_transmit(const Packet& p, Time t) const { for (auto& f : transmit_) f(p, t); }
  void notify_deliver(const Packet& p, Time t) const { for (auto& f : deliver_) f(p, t); }

 private:
  std::vector<PacketFn> arrival_;
  std::vector<DropFn> drop_;
  std::vector<PacketFn> transmit_;
  std::vector<PacketFn> deliver_;
};

}  // namespace cgs::net
