#include "net/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cgs::net {
namespace {

/// Fluid traffic never takes the whole link: the packet path always keeps
/// at least this fraction of the capacity (the share rule's hard cap).
constexpr double kMaxFluidShare = 0.98;

/// Digest range: per-session served rates live inside [0, 1.5x] of the
/// largest class envelope peak (BBR's probe phase reaches 1.25x).
constexpr double kDigestHeadroom = 1.5;
constexpr std::size_t kDigestBins = 512;

/// Envelope period in ticks for the bulk classes' cyclic shapes.
constexpr std::uint32_t kEnvelopePeriod = 8;

/// Base RNG stream for fluid sources: source i draws from
/// Pcg32(splitmix64(seed ^ i), 0xf1e0 + i) — disjoint from flow streams
/// (ids 1..n), impairment streams (0xa00/0xd01 families) and the timer
/// wheel, so fleet churn never perturbs packet-path randomness.
constexpr std::uint64_t kFluidStreamBase = 0xf1e0;

}  // namespace

std::string_view to_string(FluidClass c) {
  switch (c) {
    case FluidClass::kGameStream: return "game";
    case FluidClass::kBulkCubic: return "cubic";
    case FluidClass::kBulkBbr: return "bbr";
  }
  return "?";
}

Bandwidth fluid_default_rate(FluidClass c) {
  switch (c) {
    // Table-1 steady-state band midpoint (Stadia 27.5, GeForce 24.5,
    // Luna 23.7 Mb/s).
    case FluidClass::kGameStream: return Bandwidth::mbps(25.0);
    // A saturating bulk flow's envelope peak: the paper's 25 Mb/s default
    // bottleneck — the share rule scales it down under contention.
    case FluidClass::kBulkCubic: return Bandwidth::mbps(25.0);
    case FluidClass::kBulkBbr: return Bandwidth::mbps(25.0);
  }
  return Bandwidth::mbps(25.0);
}

std::uint64_t FleetSpec::initial_sessions() const {
  std::uint64_t n = 0;
  for (const auto& s : sources) n += s.sessions;
  return n;
}

FluidAggregate::FluidAggregate(sim::Simulator& sim, TopologyGraph& graph,
                               const FleetSpec& spec, Time duration,
                               std::uint64_t seed)
    : sim_(sim),
      graph_(graph),
      spec_(spec),
      duration_(duration),
      offered_bps_(graph.link_count(), 0.0),
      share_(graph.link_count(), 1.0),
      last_arrived_(graph.link_count(), 0),
      offered_sum_mbps_(graph.link_count(), 0.0),
      served_sum_mbps_(graph.link_count(), 0.0),
      bitrate_(0.0, 1.0, kDigestBins),  // re-made below with the real range
      timer_(sim, spec.tick, [this] { tick(); }) {
  assert(spec_.tick > kTimeZero);

  double max_peak = 1.0;
  sources_.reserve(spec_.sources.size());
  for (std::size_t i = 0; i < spec_.sources.size(); ++i) {
    const FluidSourceSpec& src = spec_.sources[i];
    SourceState st;
    st.spec = src;
    if (!src.link.empty()) {
      const int idx = graph_.spec().link_index(src.link);
      assert(idx >= 0 && "fleet link must resolve (Scenario::validate)");
      st.link = std::size_t(idx);
    }
    st.base_mbps = src.rate_mbps > 0.0
                       ? src.rate_mbps
                       : fluid_default_rate(src.cls).megabits_per_sec();
    st.rng = Pcg32(splitmix64(seed ^ std::uint64_t(i)), kFluidStreamBase + i);
    max_peak = std::max(max_peak, st.base_mbps);
    sources_.push_back(std::move(st));
  }
  bitrate_ = PercentileDigest(0.0, max_peak * kDigestHeadroom, kDigestBins);

  // Initial population, placed at t=0 (before start() ticks).
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    for (std::uint32_t k = 0; k < sources_[i].spec.sessions; ++k) {
      arrive(i, kTimeZero);
    }
  }
  peak_sessions_ = std::uint32_t(group_.size());
}

FluidAggregate::~FluidAggregate() {
  // Leave links clean for any later reuse of the graph.
  for (std::size_t li = 0; li < graph_.link_count(); ++li) {
    graph_.link_at(li).set_fluid_load(Bandwidth::zero());
  }
}

void FluidAggregate::start() { timer_.start(/*fire_now=*/true); }

double FluidAggregate::diurnal_at(const FluidSourceSpec& s, Time now) const {
  if (s.diurnal.empty() || duration_ <= kTimeZero) return 1.0;
  const double frac = std::clamp(to_seconds(now) / to_seconds(duration_), 0.0, 1.0);
  auto idx = std::size_t(frac * double(s.diurnal.size()));
  if (idx >= s.diurnal.size()) idx = s.diurnal.size() - 1;
  return s.diurnal[idx];
}

double FluidAggregate::envelope(FluidClass c, std::uint32_t phase) const {
  const std::uint32_t p = phase % kEnvelopePeriod;
  switch (c) {
    case FluidClass::kGameStream:
      // Rate-capped streamer: flat at the encoder ladder rung.
      return 1.0;
    case FluidClass::kBulkCubic:
      // AIMD sawtooth: drop to 0.75 after "loss", climb back over the
      // period (mean ~0.875, Cubic's steady-state utilisation shape).
      return 0.75 + 0.25 * (double(p) / double(kEnvelopePeriod - 1));
    case FluidClass::kBulkBbr:
      // ProbeBW gain cycle: one probe (1.25), one drain (0.75), six cruise.
      if (p == 0) return 1.25;
      if (p == 1) return 0.75;
      return 1.0;
  }
  return 1.0;
}

void FluidAggregate::arrive(std::size_t source, Time now) {
  SourceState& st = sources_[source];
  if (st.spec.max_sessions > 0) {
    // Count only this source's rows against its cap.
    std::uint32_t alive = 0;
    for (std::uint16_t g : group_) alive += (g == source);
    if (alive >= st.spec.max_sessions) return;
  }
  double mbps = st.base_mbps;
  if (st.spec.rate_jitter > 0.0) {
    mbps = st.rng.lognormal_by_moments(st.base_mbps,
                                       st.base_mbps * st.spec.rate_jitter);
  }
  std::int64_t depart = -1;
  if (st.spec.mean_holding_s > 0.0) {
    const double hold = st.rng.exponential(st.spec.mean_holding_s);
    depart = (now + from_seconds(hold)).count();
  }
  rate_mbps_.push_back(float(mbps));
  served_sum_.push_back(0.0F);
  life_ticks_.push_back(0);
  depart_ns_.push_back(depart);
  group_.push_back(std::uint16_t(source));
  phase_.push_back(std::uint16_t(st.rng.next_bounded(kEnvelopePeriod)));
  ++arrivals_;
}

void FluidAggregate::depart(std::size_t row) {
  // Fold the session's lifetime mean into the Jain accumulators, then
  // swap-remove the row.
  if (life_ticks_[row] > 0) {
    const double mean = double(served_sum_[row]) / double(life_ticks_[row]);
    jain_sum_ += mean;
    jain_sum2_ += mean * mean;
    ++jain_n_;
  }
  const std::size_t last = group_.size() - 1;
  rate_mbps_[row] = rate_mbps_[last];
  served_sum_[row] = served_sum_[last];
  life_ticks_[row] = life_ticks_[last];
  depart_ns_[row] = depart_ns_[last];
  group_[row] = group_[last];
  phase_[row] = phase_[last];
  rate_mbps_.pop_back();
  served_sum_.pop_back();
  life_ticks_.pop_back();
  depart_ns_.pop_back();
  group_.pop_back();
  phase_.pop_back();
  ++departures_;
}

void FluidAggregate::tick() {
  const Time now = sim_.now();
  const double tick_s = to_seconds(spec_.tick);

  // 1. Churn: departures whose clock expired, then Poisson arrivals.
  for (std::size_t row = 0; row < group_.size();) {
    if (depart_ns_[row] >= 0 && depart_ns_[row] <= now.count()) {
      depart(row);  // swap-remove: re-examine the same row
    } else {
      ++row;
    }
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    SourceState& st = sources_[i];
    if (st.spec.arrival_per_min <= 0.0) continue;
    const double lam =
        st.spec.arrival_per_min / 60.0 * tick_s * diurnal_at(st.spec, now);
    // Inverse-CDF Poisson draw: one uniform per tick, exact for the small
    // per-tick means a 100 ms tick produces.
    double u = st.rng.next_double();
    double p = std::exp(-lam);
    std::uint32_t k = 0;
    while (u > p && k < 64) {
      u -= p;
      ++k;
      p *= lam / double(k);
    }
    for (std::uint32_t a = 0; a < k; ++a) arrive(i, now);
  }
  peak_sessions_ = std::max(peak_sessions_, std::uint32_t(group_.size()));

  // 2. Per-session demand under the class envelope, summed per link.
  std::fill(offered_bps_.begin(), offered_bps_.end(), 0.0);
  const std::size_t n = group_.size();
  scratch_rate_.resize(n);
  for (std::size_t row = 0; row < n; ++row) {
    const SourceState& st = sources_[group_[row]];
    const double demand =
        double(rate_mbps_[row]) *
        envelope(st.spec.cls, phase_[row] + std::uint32_t(ticks_));
    scratch_rate_[row] = float(demand);
    offered_bps_[st.link] += demand * 1e6;
  }

  // 3. Capacity sharing per link: measure packet demand P as the arrived-
  // bytes delta over the previous tick, then serve the fluid demand F at
  // F (uncongested) or C*F/(F+P) (congested), capped at kMaxFluidShare*C.
  for (std::size_t li = 0; li < graph_.link_count(); ++li) {
    Link& link = graph_.link_at(li);
    const double cap_bps = double(link.rate().bits_per_sec());
    const std::int64_t arrived = link.bytes_arrived().bytes();
    const double pkt_bps =
        double(arrived - last_arrived_[li]) * 8.0 / tick_s;
    last_arrived_[li] = arrived;

    const double offered = offered_bps_[li];
    double served = offered;
    if (offered + pkt_bps > cap_bps && offered > 0.0) {
      served = cap_bps * offered / (offered + pkt_bps);
    }
    served = std::min(served, kMaxFluidShare * cap_bps);
    share_[li] = offered > 0.0 ? served / offered : 1.0;

    link.set_fluid_load(Bandwidth(std::int64_t(served)));
    offered_sum_mbps_[li] += offered / 1e6;
    served_sum_mbps_[li] += served / 1e6;
  }

  // 4. Digests: per-session served rate, stalls, lifetime sums.
  for (std::size_t row = 0; row < n; ++row) {
    const double demand = double(scratch_rate_[row]);
    const double served = demand * share_[sources_[group_[row]].link];
    bitrate_.add(served);
    served_sum_[row] += float(served);
    ++life_ticks_[row];
    ++session_ticks_;
    if (demand > 0.0 && served / demand < spec_.stall_threshold) {
      ++stall_ticks_;
    }
  }
  ++ticks_;
}

FleetResult FluidAggregate::finalize() const {
  FleetResult r;
  r.active = true;
  r.ticks = ticks_;
  r.session_ticks = session_ticks_;
  r.stall_ticks = stall_ticks_;
  r.arrivals = arrivals_;
  r.departures = departures_;
  r.peak_sessions = peak_sessions_;
  r.final_sessions = std::uint32_t(group_.size());

  r.mean_mbps = bitrate_.mean();
  r.p50_mbps = bitrate_.percentile(0.50);
  r.p95_mbps = bitrate_.percentile(0.95);
  r.p99_mbps = bitrate_.percentile(0.99);
  r.stall_rate =
      session_ticks_ > 0 ? double(stall_ticks_) / double(session_ticks_) : 0.0;

  // Jain over lifetime means: departed sessions are already folded; fold
  // the still-alive population as if it departed now.
  double s = jain_sum_, s2 = jain_sum2_;
  std::uint64_t jn = jain_n_;
  for (std::size_t row = 0; row < group_.size(); ++row) {
    if (life_ticks_[row] == 0) continue;
    const double mean = double(served_sum_[row]) / double(life_ticks_[row]);
    s += mean;
    s2 += mean * mean;
    ++jn;
  }
  r.jain = (jn > 0 && s2 > 0.0) ? (s * s) / (double(jn) * s2) : 0.0;

  r.links.reserve(graph_.link_count());
  for (std::size_t li = 0; li < graph_.link_count(); ++li) {
    FleetLinkLoad ll;
    ll.link = graph_.link_at(li).name();
    if (ticks_ > 0) {
      ll.offered_mbps_mean = offered_sum_mbps_[li] / double(ticks_);
      ll.served_mbps_mean = served_sum_mbps_[li] / double(ticks_);
    }
    r.links.push_back(std::move(ll));
  }
  return r;
}

}  // namespace cgs::net
