// Flow demultiplexer and the legacy single-bottleneck router facade.
//
// BottleneckRouter mirrors the paper's Figure 1: every downstream flow is
// funnelled into one constrained link (queue + capacity + delay) whose far
// end demuxes packets to per-flow client endpoints.  Upstream traffic
// bypasses the bottleneck through per-flow DelayLines (the paper's upstream
// path was never the bottleneck: 200+ Mb/s measured).
//
// Since the topology-graph refactor this class is a thin convenience: the
// standalone constructor keeps the historical direct-wiring API for tests
// and benchmarks, while the graph constructor makes it a view over a
// single-bottleneck net::TopologyGraph (what Testbed::router() hands out
// for synthesized paper-default scenarios).  Multi-bottleneck shapes are
// expressed with TopologySpec/TopologyGraph directly (net/topology.hpp).
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"

namespace cgs::net {

/// One congested downstream link shared by all flows + uncongested per-flow
/// reverse paths.
class BottleneckRouter {
 public:
  /// Standalone mode: owns its link, demux and upstream delay lines.
  BottleneckRouter(sim::Simulator& sim, Bandwidth capacity, Time prop_delay,
                   std::unique_ptr<Queue> queue);

  /// View mode: delegate to a single-bottleneck TopologyGraph (owns
  /// nothing; `graph` must outlive the router).  Throws std::logic_error
  /// naming the topology when the graph has more than one link.
  explicit BottleneckRouter(TopologyGraph& graph);

  /// Downstream entry point: servers send here (optionally through their own
  /// access DelayLine for RTT padding).
  [[nodiscard]] PacketSink& downstream_in();

  /// Register the client endpoint for a downstream flow.
  void register_client(FlowId flow, PacketSink* sink);

  /// Create an uncongested upstream path to `server_sink` with one-way
  /// `delay`; returns the sink clients send their upstream packets to.
  /// The owning side (router or graph) keeps the DelayLine alive.
  PacketSink& make_upstream(Time delay, PacketSink* server_sink);

  [[nodiscard]] Link& bottleneck();
  [[nodiscard]] const Link& bottleneck() const;

 private:
  sim::Simulator* sim_ = nullptr;    // standalone mode
  TopologyGraph* graph_ = nullptr;   // view mode
  FlowDemux demux_;
  std::unique_ptr<Link> link_;
  std::vector<std::unique_ptr<DelayLine>> upstream_;
};

}  // namespace cgs::net
