// Flow demultiplexer and the testbed's bottleneck router.
//
// BottleneckRouter mirrors the paper's Figure 1: every downstream flow is
// funnelled into one constrained link (queue + capacity + delay) whose far
// end demuxes packets to per-flow client endpoints.  Upstream traffic
// bypasses the bottleneck through per-flow DelayLines (the paper's upstream
// path was never the bottleneck: 200+ Mb/s measured).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace cgs::net {

/// Routes packets to a per-flow sink.
class FlowDemux final : public PacketSink {
 public:
  /// `sink` must outlive the demux.
  void register_flow(FlowId flow, PacketSink* sink);
  void handle_packet(PacketPtr pkt) override;

  [[nodiscard]] std::uint64_t unroutable_total() const { return unroutable_; }

 private:
  std::unordered_map<FlowId, PacketSink*> routes_;
  std::uint64_t unroutable_ = 0;
};

/// One congested downstream link shared by all flows + uncongested per-flow
/// reverse paths.
class BottleneckRouter {
 public:
  BottleneckRouter(sim::Simulator& sim, Bandwidth capacity, Time prop_delay,
                   std::unique_ptr<Queue> queue);

  /// Downstream entry point: servers send here (optionally through their own
  /// access DelayLine for RTT padding).
  [[nodiscard]] PacketSink& downstream_in() { return *link_; }

  /// Register the client endpoint for a downstream flow.
  void register_client(FlowId flow, PacketSink* sink) {
    demux_.register_flow(flow, sink);
  }

  /// Create an uncongested upstream path to `server_sink` with one-way
  /// `delay`; returns the sink clients send their upstream packets to.
  /// The router owns the returned DelayLine.
  PacketSink& make_upstream(Time delay, PacketSink* server_sink);

  [[nodiscard]] Link& bottleneck() { return *link_; }
  [[nodiscard]] const Link& bottleneck() const { return *link_; }

 private:
  sim::Simulator& sim_;
  FlowDemux demux_;
  std::unique_ptr<Link> link_;
  std::vector<std::unique_ptr<DelayLine>> upstream_;
};

}  // namespace cgs::net
