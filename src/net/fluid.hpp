// Hybrid-fidelity fleet layer: fluid background sessions over the packet
// topology.
//
// A FleetSpec describes populations of background sessions (game streams,
// bulk Cubic, bulk BBR) that are modelled as aggregate arrival-rate
// processes instead of per-packet endpoints.  FluidAggregate keeps the
// whole population in flyweight SoA arrays — no endpoints, no per-session
// trace series — and on a coarse tick (default 100 ms) sums each link's
// offered fluid rate, applies the deterministic capacity-sharing rule
// (DESIGN.md "Hybrid fidelity & fleet modeling"), and injects the served
// fluid rate into the Link's service model, stealing serialization
// capacity from the full-fidelity packet path.  Per-tick per-session
// served-rate samples feed O(1) population digests (fixed-bin percentile
// histogram, stall counters, Jain accumulators), so a 1000-session run
// costs O(sessions) arithmetic per tick and O(1) memory per session.
//
// Determinism: all churn (Poisson arrivals, exponential lifetimes, per-
// session rate jitter) is drawn from dedicated Pcg32 streams keyed by
// (scenario seed, source index) — streams 0xf1e0 + i — so fleet traffic
// never perturbs any packet flow's RNG, and adding a source never reseeds
// another.  An empty FleetSpec constructs nothing and leaves the packet
// path bit-identical to a fleet-free build.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/topology.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace cgs::net {

/// Traffic class of a fluid source (per-class rate envelopes).
enum class FluidClass : std::uint8_t { kGameStream, kBulkCubic, kBulkBbr };

[[nodiscard]] std::string_view to_string(FluidClass c);

/// Default per-session envelope peak for a class.  Game streams use the
/// Table-1 steady-state band (~25 Mb/s, the middle of 23.7–27.5 across the
/// three systems); bulk classes model a saturating TCP flow whose fair
/// share would exceed the envelope, pinned at the paper's 25 Mb/s default
/// bottleneck.
[[nodiscard]] Bandwidth fluid_default_rate(FluidClass c);

/// One population of fluid background sessions on one link.
struct FluidSourceSpec {
  FluidClass cls = FluidClass::kBulkCubic;

  /// Topology link carrying this population; empty = the first link.
  std::string link;

  /// Initial session count at t=0.
  std::uint32_t sessions = 0;

  /// Per-session envelope peak in Mb/s; 0 = class default
  /// (fluid_default_rate).
  double rate_mbps = 0.0;

  /// Lognormal sd/mean of the per-session rate drawn at arrival
  /// (0 = every session at the envelope exactly).
  double rate_jitter = 0.1;

  /// Poisson session arrival rate (per minute); 0 = static population.
  double arrival_per_min = 0.0;

  /// Mean exponential session lifetime in seconds; 0 = sessions never
  /// depart.
  double mean_holding_s = 0.0;

  /// Diurnal load curve: arrival-rate multipliers spread evenly across the
  /// run's duration (entry k governs the k-th fraction of the run).  Empty
  /// = flat load.
  std::vector<double> diurnal;

  /// Churn population cap; 0 = unbounded.
  std::uint32_t max_sessions = 0;
};

/// Scenario-level fleet description: fluid sources plus the shared tick.
struct FleetSpec {
  std::vector<FluidSourceSpec> sources;

  /// Fluid model tick: churn + capacity sharing + digest updates run once
  /// per tick.  Coarser ticks are cheaper and less responsive.
  Time tick = std::chrono::milliseconds(100);

  /// A session stalls in a tick when served/demand falls below this.
  double stall_threshold = 0.8;

  [[nodiscard]] bool empty() const { return sources.empty(); }

  /// Sum of initial sessions across sources.
  [[nodiscard]] std::uint64_t initial_sessions() const;
};

/// Mean fluid load carried by one link over the run.
struct FleetLinkLoad {
  std::string link;
  double offered_mbps_mean = 0.0;
  double served_mbps_mean = 0.0;
};

/// Population digest of one run's fleet (part of RunTrace).
struct FleetResult {
  bool active = false;

  std::uint64_t ticks = 0;
  std::uint64_t session_ticks = 0;  // digest sample count
  std::uint64_t stall_ticks = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint32_t peak_sessions = 0;
  std::uint32_t final_sessions = 0;

  // Population per-session served-bitrate digest (per-tick samples).
  double mean_mbps = 0.0;
  double p50_mbps = 0.0;
  double p95_mbps = 0.0;
  double p99_mbps = 0.0;

  /// Fraction of session-ticks below the stall threshold.
  double stall_rate = 0.0;

  /// Jain fairness index over per-session lifetime-mean served rates.
  double jain = 0.0;

  std::vector<FleetLinkLoad> links;
};

/// The flyweight fleet runtime: owns every fluid session as SoA rows,
/// ticks the churn/capacity-sharing/digest loop, and injects per-link
/// fluid load into the packet path via Link::set_fluid_load.
class FluidAggregate {
 public:
  /// `spec` must have passed Scenario::validate(); every named link must
  /// resolve in `graph`.
  FluidAggregate(sim::Simulator& sim, TopologyGraph& graph,
                 const FleetSpec& spec, Time duration, std::uint64_t seed);
  FluidAggregate(const FluidAggregate&) = delete;
  FluidAggregate& operator=(const FluidAggregate&) = delete;
  ~FluidAggregate();

  /// Begin ticking (first tick fires immediately, so fluid load is in
  /// place before the first packet serializes).
  void start();

  [[nodiscard]] std::size_t session_count() const { return group_.size(); }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// One fluid tick: churn, per-link demand, capacity sharing, digests.
  /// Public for the fluid-tick microbench; normal runs drive it from the
  /// periodic timer armed by start().
  void tick();

  /// Population digest of everything ticked so far (alive sessions' means
  /// are folded into the Jain figure as if they departed now).
  [[nodiscard]] FleetResult finalize() const;

 private:
  struct SourceState {
    FluidSourceSpec spec;
    std::size_t link = 0;       // resolved topology link index
    double base_mbps = 0.0;     // resolved envelope peak
    Pcg32 rng;
    SourceState() : rng(0) {}
  };

  void arrive(std::size_t source, Time now);
  void depart(std::size_t row);
  [[nodiscard]] double diurnal_at(const FluidSourceSpec& s, Time now) const;
  [[nodiscard]] double envelope(FluidClass c, std::uint32_t phase) const;

  sim::Simulator& sim_;
  TopologyGraph& graph_;
  FleetSpec spec_;
  Time duration_;
  std::vector<SourceState> sources_;

  // One session per row, SoA.  Swap-remove keeps rows dense; no per-
  // session identity outlives departure (lifetime means fold into the
  // Jain accumulators).
  std::vector<float> rate_mbps_;       // per-session envelope peak
  std::vector<float> served_sum_;      // accumulated served Mb/s over life
  std::vector<std::uint32_t> life_ticks_;
  std::vector<std::int64_t> depart_ns_;  // absolute departure time; <0 never
  std::vector<std::uint16_t> group_;     // owning source index
  std::vector<std::uint16_t> phase_;     // envelope phase offset
  std::vector<float> scratch_rate_;      // per-tick demand cache

  // Per-link tick state, indexed by topology link.
  std::vector<double> offered_bps_;
  std::vector<double> share_;          // served/offered per link this tick
  std::vector<std::int64_t> last_arrived_;  // packet bytes at last tick
  std::vector<double> offered_sum_mbps_;    // per-link running sums
  std::vector<double> served_sum_mbps_;

  // Population digests.
  PercentileDigest bitrate_;
  std::uint64_t session_ticks_ = 0;
  std::uint64_t stall_ticks_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t departures_ = 0;
  std::uint32_t peak_sessions_ = 0;
  std::uint64_t ticks_ = 0;
  // Jain over per-session lifetime means: folded at departure/finalize.
  double jain_sum_ = 0.0;
  double jain_sum2_ = 0.0;
  std::uint64_t jain_n_ = 0;

  sim::PeriodicTimer timer_;
};

}  // namespace cgs::net
