#include "net/impairment.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace cgs::net {

std::string_view to_string(OutagePolicy p) {
  switch (p) {
    case OutagePolicy::kDrop: return "drop";
    case OutagePolicy::kHold: return "hold";
  }
  return "?";
}

bool ImpairmentConfig::any() const {
  return loss_rate > 0.0 || gilbert_elliott.has_value() ||
         jitter > kTimeZero || duplicate_rate > 0.0 || !outages.empty();
}

namespace {

[[noreturn]] void fail(std::string_view where, const std::string& what) {
  std::ostringstream os;
  os << "ImpairmentConfig(" << where << "): " << what;
  throw std::invalid_argument(os.str());
}

void check_probability(std::string_view where, std::string_view field,
                       double v) {
  // The negated comparison also rejects NaN.
  if (!(v >= 0.0 && v <= 1.0)) {
    std::ostringstream os;
    os << field << " must be a probability in [0, 1], got " << v;
    fail(where, os.str());
  }
}

}  // namespace

void ImpairmentConfig::validate(std::string_view where) const {
  check_probability(where, "loss_rate", loss_rate);
  check_probability(where, "duplicate_rate", duplicate_rate);
  if (gilbert_elliott) {
    const GilbertElliott& ge = *gilbert_elliott;
    check_probability(where, "gilbert_elliott.p_good_bad", ge.p_good_bad);
    check_probability(where, "gilbert_elliott.p_bad_good", ge.p_bad_good);
    check_probability(where, "gilbert_elliott.good_loss", ge.good_loss);
    check_probability(where, "gilbert_elliott.bad_loss", ge.bad_loss);
  }
  if (jitter < kTimeZero) {
    fail(where, "jitter must be >= 0");
  }
  for (const Outage& o : outages) {
    if (o.start < kTimeZero || o.stop <= o.start) {
      std::ostringstream os;
      os << "outage [" << to_seconds(o.start) << "s, " << to_seconds(o.stop)
         << "s) must satisfy 0 <= start < stop";
      fail(where, os.str());
    }
  }
}

Impairment::Impairment(sim::Simulator& sim, PacketFactory& factory,
                       std::string name, ImpairmentConfig config, Pcg32 rng,
                       PacketSink* dst)
    : sim_(sim),
      factory_(factory),
      name_(std::move(name)),
      config_(std::move(config)),
      rng_(rng),
      dst_(dst) {
  assert(dst_ != nullptr);
  config_.validate(name_);
  std::sort(config_.outages.begin(), config_.outages.end(),
            [](const Outage& a, const Outage& b) { return a.start < b.start; });
  // Each hold outage gets a release event at its end; release_held() checks
  // whether the link is genuinely back up, so overlapping outages behave.
  for (const Outage& o : config_.outages) {
    if (o.policy == OutagePolicy::kHold) {
      sim_.schedule_at(o.stop, [this] { release_held(); });
    }
  }
}

const Outage* Impairment::active_outage() const {
  const Time now = sim_.now();
  for (const Outage& o : config_.outages) {
    if (o.start > now) break;  // sorted by start
    if (now < o.stop) return &o;
  }
  return nullptr;
}

bool Impairment::roll_loss() {
  if (config_.gilbert_elliott) {
    const GilbertElliott& ge = *config_.gilbert_elliott;
    if (ge_bad_) {
      if (rng_.bernoulli(ge.p_bad_good)) ge_bad_ = false;
    } else {
      if (rng_.bernoulli(ge.p_good_bad)) ge_bad_ = true;
    }
    const double p = ge_bad_ ? ge.bad_loss : ge.good_loss;
    if (p > 0.0 && rng_.bernoulli(p)) return true;
  }
  return config_.loss_rate > 0.0 && rng_.bernoulli(config_.loss_rate);
}

void Impairment::handle_packet(PacketPtr pkt) {
  ++counters_.received;

  if (const Outage* o = active_outage()) {
    if (o->policy == OutagePolicy::kDrop) {
      ++counters_.dropped_outage;
      return;  // the PacketPtr deleter recycles the packet
    }
    ++counters_.held;
    held_.push_back(std::move(pkt));
    return;
  }

  impair_and_forward(std::move(pkt));
}

void Impairment::impair_and_forward(PacketPtr pkt) {
  if (roll_loss()) {
    ++counters_.dropped_random;
    return;
  }
  if (config_.duplicate_rate > 0.0 && rng_.bernoulli(config_.duplicate_rate)) {
    ++counters_.duplicated;
    // The copy keeps the original's creation stamp so one-way-delay
    // measurement downstream is unaffected; only the uid differs.
    forward(factory_.make(pkt->flow, pkt->klass, pkt->size_bytes, pkt->created,
                          pkt->header));
  }
  forward(std::move(pkt));
}

void Impairment::forward(PacketPtr pkt) {
  const Time now = sim_.now();
  Time release = now;
  if (config_.jitter > kTimeZero) {
    release += Time(std::int64_t(rng_.next_double() *
                                 double(config_.jitter.count())));
  }
  if (!config_.allow_reorder) {
    // netem `delay ... jitter` without reordering: releases are clamped to
    // be monotone, turning jitter into short standing-queue episodes.
    release = std::max(release, last_release_);
    last_release_ = release;
  }
  ++counters_.delivered;
  if (release <= now) {
    dst_->handle_packet(std::move(pkt));
    return;
  }
  sim_.schedule_at(release, [this, p = std::move(pkt)]() mutable {
    dst_->handle_packet(std::move(p));
  });
}

void Impairment::release_held() {
  if (active_outage() != nullptr) return;  // another outage still covers now
  while (!held_.empty()) {
    PacketPtr p = std::move(held_.front());
    held_.pop_front();
    ++counters_.released;
    // The loss/duplication roll happens at release: the link transmits the
    // parked burst only once it is back up.
    impair_and_forward(std::move(p));
  }
}

}  // namespace cgs::net
