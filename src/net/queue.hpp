// Bottleneck queue disciplines.
//
// DropTailQueue is the paper's router configuration (`tc tbf limit <bytes>`):
// a byte-limited FIFO that drops arriving packets when full.  CoDel and
// FQ-CoDel (paper §5 future work) live in codel.hpp.
#pragma once

#include <functional>

#include "net/packet.hpp"
#include "util/ring_buffer.hpp"
#include "util/units.hpp"

namespace cgs::net {

/// Why a queue dropped a packet.
enum class DropReason : std::uint8_t { kOverflow, kAqmMark };

/// Abstract queue discipline feeding a Link.
class Queue {
 public:
  virtual ~Queue() = default;

  /// Hand a packet to the queue; the queue may drop it (reported through the
  /// drop handler). `now` is the arrival time.
  virtual void enqueue(PacketPtr pkt, Time now) = 0;

  /// Next packet to transmit, or nullptr when empty. AQM disciplines may
  /// drop internally during dequeue.
  virtual PacketPtr dequeue(Time now) = 0;

  [[nodiscard]] virtual ByteSize byte_length() const = 0;
  [[nodiscard]] virtual std::size_t packet_count() const = 0;
  [[nodiscard]] bool empty() const { return packet_count() == 0; }

  [[nodiscard]] virtual std::string_view name() const = 0;

  using DropHandler = std::function<void(const Packet&, DropReason, Time)>;
  void set_drop_handler(DropHandler h) { on_drop_ = std::move(h); }

  [[nodiscard]] std::uint64_t drops_total() const { return drops_; }

 protected:
  void report_drop(const Packet& pkt, DropReason reason, Time now) {
    ++drops_;
    if (on_drop_) on_drop_(pkt, reason, now);
  }

 private:
  DropHandler on_drop_;
  std::uint64_t drops_ = 0;
};

/// Byte-limited FIFO with tail drop.
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(ByteSize capacity) : capacity_(capacity) {}

  void enqueue(PacketPtr pkt, Time now) override;
  PacketPtr dequeue(Time now) override;

  [[nodiscard]] ByteSize byte_length() const override { return bytes_; }
  [[nodiscard]] std::size_t packet_count() const override { return q_.size(); }
  [[nodiscard]] ByteSize capacity() const { return capacity_; }
  [[nodiscard]] std::string_view name() const override { return "droptail"; }

 private:
  ByteSize capacity_;
  ByteSize bytes_{0};
  util::RingBuffer<PacketPtr> q_;
};

}  // namespace cgs::net
