#include "net/packet.hpp"

namespace cgs::net {

std::string_view to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kGameStream: return "game";
    case TrafficClass::kStreamInput: return "input";
    case TrafficClass::kTcpData: return "tcp";
    case TrafficClass::kTcpAck: return "ack";
    case TrafficClass::kPing: return "ping";
  }
  return "?";
}

Packet* PacketPool::acquire() {
  if (!free_.empty()) {
    Packet* p = free_.back();
    free_.pop_back();
    ++recycled_;
    return p;
  }
  if (chunk_fill_ == kChunkSize) {
    if (arena_ != nullptr) {
      // Start the packets' lifetimes in arena storage; value-initialise so
      // a fresh chunk matches what `new Packet[...]` produces.
      Packet* chunk = arena_->allocate_array<Packet>(kChunkSize);
      for (std::size_t i = 0; i < kChunkSize; ++i) ::new (chunk + i) Packet();
      chunks_.push_back(chunk);
    } else {
      chunks_.push_back(new Packet[kChunkSize]());
    }
    chunk_fill_ = 0;
  }
  storage_count_++;
  return &chunks_.back()[chunk_fill_++];
}

PacketPtr PacketFactory::make(FlowId flow, TrafficClass klass,
                              std::int32_t size_bytes, Time now,
                              Header header) {
  Packet* p = pool_->acquire();
  p->uid = next_uid_++;
  p->flow = flow;
  p->klass = klass;
  p->size_bytes = size_bytes;
  p->created = now;
  p->enqueued = kTimeZero;
  p->header = std::move(header);
  return PacketPtr(p, PacketDeleter{pool_});
}

}  // namespace cgs::net
