#include "net/packet.hpp"

namespace cgs::net {

std::string_view to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kGameStream: return "game";
    case TrafficClass::kStreamInput: return "input";
    case TrafficClass::kTcpData: return "tcp";
    case TrafficClass::kTcpAck: return "ack";
    case TrafficClass::kPing: return "ping";
  }
  return "?";
}

PacketPtr PacketFactory::make(FlowId flow, TrafficClass klass,
                              std::int32_t size_bytes, Time now,
                              Header header) {
  auto pkt = std::make_unique<Packet>();
  pkt->uid = next_uid_++;
  pkt->flow = flow;
  pkt->klass = klass;
  pkt->size_bytes = size_bytes;
  pkt->created = now;
  pkt->header = std::move(header);
  return pkt;
}

}  // namespace cgs::net
