// Declarative network topology — the graph generalisation of the paper's
// Figure-1 single bottleneck.
//
// A TopologySpec names directed links (rate, propagation delay, queue
// discipline and size, optional ingress impairment, optional deterministic
// rate schedule) and per-flow paths as link-name sequences.  TopologyGraph
// instantiates the spec against a simulator: one Link + egress FlowDemux
// per LinkSpec, per-link Impairment stages on private RNG streams, and
// flow routing registered hop by hop, so arbitrary multi-bottleneck shapes
// (parking lots, asymmetric up/down paths, variable-rate access links)
// compose from the same Link/Queue primitives the single-bottleneck
// testbed always used.  A 1-link graph built from the synthesized paper
// default is object-for-object identical to the retired hard-wired
// BottleneckRouter wiring, which is what keeps the golden traces
// bit-exact across the refactor.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/impairment.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"

namespace cgs::net {

/// Routes packets to a per-flow sink (each link's egress stage).
class FlowDemux final : public PacketSink {
 public:
  /// `sink` must outlive the demux.
  void register_flow(FlowId flow, PacketSink* sink);
  void handle_packet(PacketPtr pkt) override;

  [[nodiscard]] std::uint64_t unroutable_total() const { return unroutable_; }

 private:
  std::unordered_map<FlowId, PacketSink*> routes_;
  std::uint64_t unroutable_ = 0;
};

/// Queue discipline selector for a link (the paper's router ran DropTail;
/// CoDel / FQ-CoDel are the §5 future-work AQMs).
enum class QueueKind { kDropTail, kCoDel, kFqCoDel };

[[nodiscard]] std::string_view to_string(QueueKind k);

/// Instantiate a queue discipline with the given byte capacity.
[[nodiscard]] std::unique_ptr<Queue> make_queue(QueueKind kind,
                                                ByteSize capacity);

/// One step of a deterministic per-link rate schedule (wifi/cellular-like
/// capacity variation): at sim time `at` the link's rate becomes `rate`.
struct RateChange {
  Time at = kTimeZero;
  Bandwidth rate;
};

/// One directed link of the topology.
struct LinkSpec {
  /// Diagnostic/report name; empty synthesizes "link<i>".
  std::string name;
  /// Informational endpoint node names (e.g. "server" -> "isp").
  std::string from, to;

  Bandwidth rate = Bandwidth::mbps(25.0);
  Time prop_delay = std::chrono::milliseconds(1);

  /// Queue discipline; nullopt inherits the scenario's queue_kind.
  std::optional<QueueKind> queue;
  /// Queue size in multiples of BDP(rate, base_rtt); nullopt inherits the
  /// scenario's queue_bdp_mult.
  std::optional<double> queue_bdp_mult;
  /// Explicit queue size in bytes; wins over any BDP derivation.
  std::optional<ByteSize> queue_bytes;

  /// Ingress impairment stage (netem on this hop); every flow entering the
  /// link passes through it.
  std::optional<ImpairmentConfig> impair;

  /// Deterministic mid-run capacity changes, sorted by `at`.
  std::vector<RateChange> rate_schedule;
};

/// Path assignment for one flow: downstream (server -> client) and
/// upstream (client -> server) link-name sequences.  Flows without a
/// PathSpec take the topology's default paths.  The upstream sequence may
/// be empty: the testbed always appends a pure delay line that pads the
/// flow's round trip to the scenario base_rtt.
struct PathSpec {
  FlowId flow = 0;
  std::vector<std::string> down;
  std::vector<std::string> up;
};

struct TopologySpec {
  std::string name = "custom";
  std::vector<LinkSpec> links;
  std::vector<PathSpec> paths;

  /// Paths for flows without an explicit PathSpec.  default_down empty
  /// falls back to every link in declaration order (the common chain
  /// topology); default_up empty means a pure delay-line reverse path.
  std::vector<std::string> default_down;
  std::vector<std::string> default_up;

  [[nodiscard]] bool empty() const { return links.empty(); }

  /// Index of the named link, or -1.
  [[nodiscard]] int link_index(std::string_view link_name) const;

  /// The explicit PathSpec for `flow`, or nullptr.
  [[nodiscard]] const PathSpec* path_for(FlowId flow) const;

  /// Copy with empty link names filled in ("link<i>").
  [[nodiscard]] TopologySpec resolved() const;

  // -- canonical shapes ------------------------------------------------------

  /// The paper's Figure-1 shape: one downstream bottleneck link named
  /// "bottleneck", delay-line reverse paths.  This is what Scenario
  /// synthesizes when no explicit topology is given.
  [[nodiscard]] static TopologySpec single_bottleneck(Bandwidth rate,
                                                      Time prop_delay);

  /// N bottlenecks in series ("parking lot"): links "hop0".."hop<n-1>",
  /// default downstream path traversing all of them.  Cross-traffic flows
  /// are given single-hop paths via `paths`.
  [[nodiscard]] static TopologySpec parking_lot(std::size_t hops,
                                                Bandwidth rate,
                                                Time prop_delay);

  /// Asymmetric access: a "down" bottleneck on the forward path and an
  /// "up" bottleneck on the reverse path (ACK/feedback contention).
  [[nodiscard]] static TopologySpec asymmetric(Bandwidth down_rate,
                                               Bandwidth up_rate,
                                               Time prop_delay);
};

/// The instantiated graph: owns links, per-link egress demuxes, per-link
/// ingress impairment stages and upstream delay lines, and registers
/// per-flow routes hop by hop.  The spec must have passed
/// Scenario::validate() (or equivalent) — construction assumes link names
/// and path references resolve.
class TopologyGraph {
 public:
  struct Config {
    QueueKind default_queue = QueueKind::kDropTail;
    double default_bdp_mult = 2.0;
    /// BDP base for per-link queue sizing.
    Time base_rtt = std::chrono::microseconds(16'500);
    /// Per-link impairment RNG streams are Pcg32(seed, 0xd01 + link index),
    /// so the synthesized default's only stage keeps the historical 0xd01
    /// "down" stream.
    std::uint64_t seed = 0;
  };

  TopologyGraph(sim::Simulator& sim, PacketFactory& factory,
                TopologySpec spec, const Config& cfg);
  TopologyGraph(const TopologyGraph&) = delete;
  TopologyGraph& operator=(const TopologyGraph&) = delete;

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] Link& link_at(std::size_t i) { return *links_[i]; }
  [[nodiscard]] const Link& link_at(std::size_t i) const { return *links_[i]; }
  [[nodiscard]] Link* find_link(std::string_view link_name);

  /// The sole link of a single-bottleneck graph; throws std::logic_error
  /// naming the topology when the graph has more than one link.
  [[nodiscard]] Link& bottleneck();
  [[nodiscard]] const Link& bottleneck() const;

  /// Resolved queue capacity of link `i` in bytes.
  [[nodiscard]] ByteSize queue_capacity(std::size_t i) const {
    return queue_bytes_[i];
  }

  /// Ingress impairment stage of link `i`, or nullptr.
  [[nodiscard]] Impairment* ingress_impairment(std::size_t i) {
    return impair_[i].get();
  }

  /// Where packets enter link `i`: its impairment stage when configured,
  /// else the link itself.
  [[nodiscard]] PacketSink& link_entry(std::size_t i);

  // -- per-flow wiring -------------------------------------------------------

  /// Ingress of `flow`'s first downstream link.
  [[nodiscard]] PacketSink& downstream_entry(FlowId flow);

  /// Register `sink` as the flow's client endpoint and install the
  /// intermediate hop-to-hop routes of its downstream path.
  void register_client(FlowId flow, PacketSink* sink);

  /// Index of the flow's last downstream link (where its goodput is
  /// measured — the client side of the path).
  [[nodiscard]] std::size_t terminal_link(FlowId flow) const;

  /// Build the flow's reverse path: a delay line of `pad` feeding the
  /// flow's upstream link chain (possibly empty) and finally
  /// `server_sink`.  Returns the sink the client endpoint sends to.  The
  /// graph owns the delay line.
  PacketSink& make_upstream(FlowId flow, Time pad, PacketSink* server_sink);

  /// Flow-agnostic pure-delay reverse path (the legacy BottleneckRouter
  /// contract, used by its facade).
  PacketSink& make_delay_upstream(Time delay, PacketSink* server_sink);

  /// Sum of propagation delays over the flow's downstream / upstream links
  /// (RTT-padding inputs).
  [[nodiscard]] Time down_prop(FlowId flow) const;
  [[nodiscard]] Time up_prop(FlowId flow) const;

  /// Schedule every link's rate_schedule changes (call once at run start;
  /// a no-op for topologies without rate schedules).
  void schedule_rate_changes();

 private:
  struct ResolvedPath {
    std::vector<std::size_t> down, up;
  };

  [[nodiscard]] const ResolvedPath& resolved(FlowId flow) const;

  sim::Simulator& sim_;
  TopologySpec spec_;
  // Demuxes precede links (each link's dst is its egress demux).
  std::vector<std::unique_ptr<FlowDemux>> demux_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Impairment>> impair_;  // parallel; may be null
  std::vector<ByteSize> queue_bytes_;
  std::vector<std::unique_ptr<DelayLine>> upstream_;

  ResolvedPath default_path_;
  std::unordered_map<FlowId, ResolvedPath> flow_paths_;
};

}  // namespace cgs::net
