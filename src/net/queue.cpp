#include "net/queue.hpp"

namespace cgs::net {

void DropTailQueue::enqueue(PacketPtr pkt, Time now) {
  if (bytes_ + pkt->size() > capacity_) {
    report_drop(*pkt, DropReason::kOverflow, now);
    return;  // pkt destroyed: dropped
  }
  pkt->enqueued = now;
  bytes_ += pkt->size();
  q_.push_back(std::move(pkt));
}

PacketPtr DropTailQueue::dequeue(Time /*now*/) {
  if (q_.empty()) return nullptr;
  PacketPtr pkt = q_.pop_front();
  bytes_ -= pkt->size();
  return pkt;
}

}  // namespace cgs::net
