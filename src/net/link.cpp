#include "net/link.hpp"

#include <cassert>
#include <utility>

namespace cgs::net {

Link::Link(sim::Simulator& sim, std::string name, Bandwidth rate,
           Time prop_delay, std::unique_ptr<Queue> queue, PacketSink* dst)
    : sim_(sim),
      name_(std::move(name)),
      rate_(rate),
      prop_delay_(prop_delay),
      queue_(std::move(queue)),
      dst_(dst) {
  assert(dst_ != nullptr);
  assert(!rate_.is_zero() && "Link requires finite capacity; use DelayLine");
  queue_->set_drop_handler([this](const Packet& p, DropReason r, Time t) {
    sniffer_.notify_drop(p, r, t);
  });
}

void Link::handle_packet(PacketPtr pkt) {
  const Time now = sim_.now();
  arrived_bytes_ += pkt->size();
  sniffer_.notify_arrival(*pkt, now);
  queue_->enqueue(std::move(pkt), now);
  if (!busy_) try_transmit();
}

void Link::handle_batch(PacketBatch& batch) {
  // Strictly the per-packet sequence, once per entry: queue disciplines
  // (CoDel) make per-dequeue decisions, so bulk-enqueueing then draining
  // would change behaviour.  The win is one event dispatch and one warm
  // pass instead of one event per packet.
  const Time now = sim_.now();
  for (std::size_t i = 0; i < batch.count; ++i) {
    PacketPtr pkt = std::move(batch.pkts[i]);
    arrived_bytes_ += pkt->size();
    sniffer_.notify_arrival(*pkt, now);
    queue_->enqueue(std::move(pkt), now);
    if (!busy_) try_transmit();
  }
}

void Link::try_transmit() {
  assert(!busy_);
  PacketPtr pkt = queue_->dequeue(sim_.now());
  if (!pkt) return;

  busy_ = true;
  sniffer_.notify_transmit(*pkt, sim_.now());
  // Zero fluid load takes the exact legacy expression so fleet-free runs
  // stay bit-identical (golden trace hashes).
  const Time ser = fluid_load_.is_zero() ? rate_.transmit_time(pkt->size())
                                         : packet_rate().transmit_time(pkt->size());

  // Serialisation completes after `ser`; the packet then propagates for
  // prop_delay_ without occupying the transmitter.  Both stages are typed
  // packet events carrying the in-flight packet — the per-packet hot path
  // constructs no closures at all.
  sim_.push_packet_in(ser, &ser_done_, std::move(pkt));
}

void Link::SerDone::handle_packet(PacketPtr pkt) {
  Link& l = *link;
  l.busy_ = false;
  ++l.delivered_pkts_;
  l.delivered_bytes_ += pkt->size();
  l.sim_.push_packet_in(l.prop_delay_, &l.delivery_end_, std::move(pkt));
  l.try_transmit();
}

void Link::DeliveryEnd::handle_packet(PacketPtr pkt) {
  link->sniffer_.notify_deliver(*pkt, link->sim_.now());
  link->dst_->handle_packet(std::move(pkt));
}

void Link::DeliveryEnd::handle_batch(PacketBatch& batch) {
  // Taps never schedule events and downstream handlers never read tap
  // state, so notifying the whole burst before forwarding it preserves
  // per-packet observable behaviour while keeping the batch intact for
  // the destination's bulk path.
  const Time now = link->sim_.now();
  for (std::size_t i = 0; i < batch.count; ++i) {
    link->sniffer_.notify_deliver(*batch.pkts[i], now);
  }
  link->dst_->handle_batch(batch);
}

void DelayLine::handle_packet(PacketPtr pkt) {
  sim_.push_packet_in(delay_, dst_, std::move(pkt));
}

}  // namespace cgs::net
