#include "net/link.hpp"

#include <cassert>
#include <utility>

namespace cgs::net {

Link::Link(sim::Simulator& sim, std::string name, Bandwidth rate,
           Time prop_delay, std::unique_ptr<Queue> queue, PacketSink* dst)
    : sim_(sim),
      name_(std::move(name)),
      rate_(rate),
      prop_delay_(prop_delay),
      queue_(std::move(queue)),
      dst_(dst) {
  assert(dst_ != nullptr);
  assert(!rate_.is_zero() && "Link requires finite capacity; use DelayLine");
  queue_->set_drop_handler([this](const Packet& p, DropReason r, Time t) {
    sniffer_.notify_drop(p, r, t);
  });
}

void Link::handle_packet(PacketPtr pkt) {
  const Time now = sim_.now();
  sniffer_.notify_arrival(*pkt, now);
  queue_->enqueue(std::move(pkt), now);
  if (!busy_) try_transmit();
}

void Link::try_transmit() {
  assert(!busy_);
  PacketPtr pkt = queue_->dequeue(sim_.now());
  if (!pkt) return;

  busy_ = true;
  sniffer_.notify_transmit(*pkt, sim_.now());
  const Time ser = rate_.transmit_time(pkt->size());

  // Serialisation completes after `ser`; the packet then propagates for
  // prop_delay_ without occupying the transmitter. The move-only EventFn
  // lets the closures own the PacketPtr directly (keeping the pool deleter
  // intact), where std::function used to force a release()/rewrap dance.
  sim_.schedule_in(ser, [this, p = std::move(pkt)]() mutable {
    busy_ = false;
    ++delivered_pkts_;
    delivered_bytes_ += p->size();
    sim_.schedule_in(prop_delay_, [this, q = std::move(p)]() mutable {
      sniffer_.notify_deliver(*q, sim_.now());
      dst_->handle_packet(std::move(q));
    });
    try_transmit();
  });
}

void DelayLine::handle_packet(PacketPtr pkt) {
  sim_.schedule_in(delay_, [this, p = std::move(pkt)]() mutable {
    dst_->handle_packet(std::move(p));
  });
}

}  // namespace cgs::net
