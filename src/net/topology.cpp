#include "net/topology.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "net/codel.hpp"
#include "util/logging.hpp"

namespace cgs::net {

void FlowDemux::register_flow(FlowId flow, PacketSink* sink) {
  routes_[flow] = sink;
}

void FlowDemux::handle_packet(PacketPtr pkt) {
  auto it = routes_.find(pkt->flow);
  if (it == routes_.end()) {
    ++unroutable_;
    CGS_LOG_WARN("FlowDemux: no route for flow ", pkt->flow);
    return;  // drop
  }
  it->second->handle_packet(std::move(pkt));
}

std::string_view to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kDropTail: return "droptail";
    case QueueKind::kCoDel: return "codel";
    case QueueKind::kFqCoDel: return "fq_codel";
  }
  return "?";
}

std::unique_ptr<Queue> make_queue(QueueKind kind, ByteSize capacity) {
  switch (kind) {
    case QueueKind::kDropTail:
      return std::make_unique<DropTailQueue>(capacity);
    case QueueKind::kCoDel: {
      CodelParams p;
      p.capacity = capacity;
      return std::make_unique<CodelQueue>(p);
    }
    case QueueKind::kFqCoDel: {
      CodelParams p;
      p.capacity = capacity;
      return std::make_unique<FqCodelQueue>(p);
    }
  }
  return nullptr;
}

int TopologySpec::link_index(std::string_view link_name) const {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i].name == link_name) return int(i);
  }
  return -1;
}

const PathSpec* TopologySpec::path_for(FlowId flow) const {
  for (const PathSpec& p : paths) {
    if (p.flow == flow) return &p;
  }
  return nullptr;
}

TopologySpec TopologySpec::resolved() const {
  TopologySpec out = *this;
  for (std::size_t i = 0; i < out.links.size(); ++i) {
    if (out.links[i].name.empty()) {
      std::ostringstream os;
      os << "link" << i;
      out.links[i].name = os.str();
    }
  }
  return out;
}

TopologySpec TopologySpec::single_bottleneck(Bandwidth rate, Time prop_delay) {
  TopologySpec t;
  t.name = "bottleneck";
  LinkSpec l;
  l.name = "bottleneck";
  l.from = "router";
  l.to = "client";
  l.rate = rate;
  l.prop_delay = prop_delay;
  t.links.push_back(std::move(l));
  t.default_down = {"bottleneck"};
  return t;
}

TopologySpec TopologySpec::parking_lot(std::size_t hops, Bandwidth rate,
                                       Time prop_delay) {
  TopologySpec t;
  {
    std::ostringstream os;
    os << "parkinglot" << hops;
    t.name = os.str();
  }
  for (std::size_t i = 0; i < hops; ++i) {
    LinkSpec l;
    std::ostringstream name, from, to;
    name << "hop" << i;
    from << "n" << i;
    to << "n" << (i + 1);
    l.name = name.str();
    l.from = from.str();
    l.to = to.str();
    l.rate = rate;
    l.prop_delay = prop_delay;
    t.default_down.push_back(l.name);
    t.links.push_back(std::move(l));
  }
  return t;
}

TopologySpec TopologySpec::asymmetric(Bandwidth down_rate, Bandwidth up_rate,
                                      Time prop_delay) {
  TopologySpec t;
  t.name = "asym";
  LinkSpec down;
  down.name = "down";
  down.from = "server";
  down.to = "client";
  down.rate = down_rate;
  down.prop_delay = prop_delay;
  LinkSpec up;
  up.name = "up";
  up.from = "client";
  up.to = "server";
  up.rate = up_rate;
  up.prop_delay = prop_delay;
  t.links.push_back(std::move(down));
  t.links.push_back(std::move(up));
  t.default_down = {"down"};
  t.default_up = {"up"};
  return t;
}

namespace {
std::vector<std::size_t> resolve_names(const TopologySpec& spec,
                                       const std::vector<std::string>& names) {
  std::vector<std::size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    const int i = spec.link_index(n);
    if (i < 0) {
      throw std::invalid_argument("TopologyGraph: topology '" + spec.name +
                                  "' path references unknown link '" + n +
                                  "'");
    }
    out.push_back(std::size_t(i));
  }
  return out;
}
}  // namespace

TopologyGraph::TopologyGraph(sim::Simulator& sim, PacketFactory& factory,
                             TopologySpec spec, const Config& cfg)
    : sim_(sim), spec_(spec.resolved()) {
  const std::size_t n = spec_.links.size();
  if (n == 0) {
    throw std::invalid_argument("TopologyGraph: topology '" + spec_.name +
                                "' has no links");
  }
  demux_.reserve(n);
  links_.reserve(n);
  impair_.reserve(n);
  queue_bytes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const LinkSpec& ls = spec_.links[i];
    demux_.push_back(std::make_unique<FlowDemux>());
    ByteSize qb{0};
    if (ls.queue_bytes) {
      qb = *ls.queue_bytes;
    } else {
      // Same derivation as Scenario::queue_bytes() so the synthesized
      // default sizes its queue identically to the retired router path.
      const ByteSize one_bdp = bdp(ls.rate, cfg.base_rtt);
      const double mult = ls.queue_bdp_mult.value_or(cfg.default_bdp_mult);
      const auto bytes = std::int64_t(double(one_bdp.bytes()) * mult);
      qb = ByteSize(std::max<std::int64_t>(bytes, 2 * 1514));
    }
    queue_bytes_.push_back(qb);
    links_.push_back(std::make_unique<Link>(
        sim, ls.name, ls.rate, ls.prop_delay,
        make_queue(ls.queue.value_or(cfg.default_queue), qb),
        demux_[i].get()));
    if (ls.impair && ls.impair->any()) {
      // A 1-link graph keeps the historical stage name "down" (it IS the
      // legacy downstream stage); multi-link graphs name stages by hop.
      const std::string stage_name =
          n == 1 ? "down" : ("in-" + ls.name);
      impair_.push_back(std::make_unique<Impairment>(
          sim, factory, stage_name, *ls.impair,
          Pcg32(cfg.seed, 0xd01 + std::uint64_t(i)), links_[i].get()));
    } else {
      impair_.push_back(nullptr);
    }
  }

  if (spec_.default_down.empty()) {
    // Chain topology: the default downstream path traverses every link.
    for (std::size_t i = 0; i < n; ++i) default_path_.down.push_back(i);
  } else {
    default_path_.down = resolve_names(spec_, spec_.default_down);
  }
  default_path_.up = resolve_names(spec_, spec_.default_up);
  for (const PathSpec& p : spec_.paths) {
    ResolvedPath rp;
    rp.down = p.down.empty() ? default_path_.down : resolve_names(spec_, p.down);
    rp.up = resolve_names(spec_, p.up);
    flow_paths_.emplace(p.flow, std::move(rp));
  }
}

Link* TopologyGraph::find_link(std::string_view link_name) {
  const int i = spec_.link_index(link_name);
  return i < 0 ? nullptr : links_[std::size_t(i)].get();
}

Link& TopologyGraph::bottleneck() {
  return const_cast<Link&>(std::as_const(*this).bottleneck());
}

const Link& TopologyGraph::bottleneck() const {
  if (links_.size() != 1) {
    std::ostringstream os;
    os << "TopologyGraph: bottleneck(): topology '" << spec_.name << "' has "
       << links_.size() << " links; there is no single bottleneck "
       << "(address links by name or index instead)";
    throw std::logic_error(os.str());
  }
  return *links_.front();
}

PacketSink& TopologyGraph::link_entry(std::size_t i) {
  if (impair_[i]) return *impair_[i];
  return *links_[i];
}

const TopologyGraph::ResolvedPath& TopologyGraph::resolved(FlowId flow) const {
  auto it = flow_paths_.find(flow);
  return it == flow_paths_.end() ? default_path_ : it->second;
}

PacketSink& TopologyGraph::downstream_entry(FlowId flow) {
  return link_entry(resolved(flow).down.front());
}

void TopologyGraph::register_client(FlowId flow, PacketSink* sink) {
  const ResolvedPath& path = resolved(flow);
  for (std::size_t j = 0; j + 1 < path.down.size(); ++j) {
    demux_[path.down[j]]->register_flow(flow,
                                        &link_entry(path.down[j + 1]));
  }
  demux_[path.down.back()]->register_flow(flow, sink);
}

std::size_t TopologyGraph::terminal_link(FlowId flow) const {
  return resolved(flow).down.back();
}

PacketSink& TopologyGraph::make_upstream(FlowId flow, Time pad,
                                         PacketSink* server_sink) {
  const ResolvedPath& path = resolved(flow);
  PacketSink* entry = server_sink;
  // Wire the upstream chain back to front: each hop's demux routes this
  // flow to the next hop's entry, the last hop to the server.
  for (std::size_t j = path.up.size(); j-- > 0;) {
    demux_[path.up[j]]->register_flow(flow, entry);
    entry = &link_entry(path.up[j]);
  }
  upstream_.push_back(std::make_unique<DelayLine>(sim_, pad, entry));
  return *upstream_.back();
}

PacketSink& TopologyGraph::make_delay_upstream(Time delay,
                                               PacketSink* server_sink) {
  upstream_.push_back(std::make_unique<DelayLine>(sim_, delay, server_sink));
  return *upstream_.back();
}

Time TopologyGraph::down_prop(FlowId flow) const {
  Time sum = kTimeZero;
  for (std::size_t i : resolved(flow).down) sum += spec_.links[i].prop_delay;
  return sum;
}

Time TopologyGraph::up_prop(FlowId flow) const {
  Time sum = kTimeZero;
  for (std::size_t i : resolved(flow).up) sum += spec_.links[i].prop_delay;
  return sum;
}

void TopologyGraph::schedule_rate_changes() {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    Link* link = links_[i].get();
    for (const RateChange& rc : spec_.links[i].rate_schedule) {
      sim_.schedule_at(rc.at, [link, rate = rc.rate] { link->set_rate(rate); });
    }
  }
}

}  // namespace cgs::net
