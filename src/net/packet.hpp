// Simulation packets.
//
// Packets carry metadata only (no payload bytes): a wire size for queueing /
// serialisation arithmetic plus a typed header variant for the receiving
// endpoint.  Ownership is a unique_ptr moving sender -> queue -> link ->
// sink; raw pointers/references only observe (Core Guidelines I.11).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "util/arena.hpp"
#include "util/units.hpp"

namespace cgs::net {

/// Identifies one unidirectional flow end-to-end.
using FlowId = std::uint32_t;

/// Traffic class, used by collectors and FQ queues for classification.
enum class TrafficClass : std::uint8_t {
  kGameStream,   // UDP game video downstream
  kStreamInput,  // player input / feedback upstream
  kTcpData,      // bulk TCP data downstream
  kTcpAck,       // TCP ACKs upstream
  kPing,         // latency probes
};

[[nodiscard]] std::string_view to_string(TrafficClass c);

/// One SACK-style block [start, end) in byte sequence space.
struct SackBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  [[nodiscard]] bool empty() const { return end <= start; }
};

/// TCP data segment (downstream) or ACK (upstream).
struct TcpHeader {
  std::uint64_t seq = 0;       // first byte of this segment
  std::uint32_t len = 0;       // payload bytes (0 for pure ACK)
  std::uint64_t ack = 0;       // cumulative ACK (valid on ACKs)
  bool is_ack = false;
  std::array<SackBlock, 3> sacks{};  // most recent out-of-order blocks
  std::uint64_t tx_id = 0;     // unique per (re)transmission, for rate sampling
};

/// RTP-style video packet: one slice of an encoded frame.
struct RtpHeader {
  std::uint32_t seq = 0;           // per-flow packet sequence number
  std::uint32_t frame_id = 0;
  std::uint16_t pkt_index = 0;     // index of this packet within the frame
  std::uint16_t pkts_in_frame = 0;
  bool keyframe = false;
  Time frame_gen_time = kTimeZero; // when the encoder emitted the frame
};

/// Receiver report for the game stream (RTCP-like), sent upstream.
struct FeedbackHeader {
  std::uint32_t highest_seq = 0;   // highest RTP seq seen
  std::uint64_t cum_recv_pkts = 0;
  std::uint64_t cum_lost_pkts = 0;
  std::uint32_t window_recv_pkts = 0;  // packets this interval (0 = blackout)
  double window_loss_fraction = 0; // loss over the report interval
  std::int64_t recv_rate_bps = 0;  // goodput over the report interval
  Time avg_owd = kTimeZero;        // mean one-way delay over the interval
  Time min_owd = kTimeZero;        // min one-way delay over the interval
  Time report_time = kTimeZero;    // receiver clock when the report was made
};

/// ICMP-echo-like latency probe.
struct PingHeader {
  std::uint32_t ping_id = 0;
  bool is_reply = false;
  Time sent_time = kTimeZero;
};

using Header =
    std::variant<std::monostate, TcpHeader, RtpHeader, FeedbackHeader, PingHeader>;

struct Packet {
  std::uint64_t uid = 0;      // unique within a simulation
  FlowId flow = 0;
  TrafficClass klass = TrafficClass::kGameStream;
  std::int32_t size_bytes = 0;  // size on the wire, headers included
  Time created = kTimeZero;     // when the sender emitted it
  Time enqueued = kTimeZero;    // set by the queue (for sojourn times)
  Header header;

  [[nodiscard]] ByteSize size() const { return ByteSize(size_bytes); }
};

/// Recycling store backing a PacketFactory: packets live in chunked arenas
/// and circulate through a free list, so steady-state traffic reuses
/// storage instead of hitting the allocator. Shared (via shared_ptr in the
/// deleter) so in-flight packets keep the pool alive even if the factory
/// is destroyed first.
class PacketPool {
 public:
  /// With an arena, packet chunks are carved from it instead of the heap;
  /// the arena must outlive the pool (and thus every in-flight packet).
  explicit PacketPool(util::Arena* arena = nullptr) : arena_(arena) {}
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool() {
    if (arena_ == nullptr) {
      for (Packet* chunk : chunks_) delete[] chunk;
    }
    // Arena-backed chunks are plain storage the arena reclaims wholesale
    // (Packet is trivially destructible; see static_assert below).
  }

  [[nodiscard]] Packet* acquire();
  void release(Packet* p) noexcept { free_.push_back(p); }

  /// Packets currently parked in the free list.
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  /// Distinct Packet objects ever carved from the arenas.
  [[nodiscard]] std::size_t storage_count() const { return storage_count_; }
  /// acquire() calls served from the free list rather than fresh storage.
  [[nodiscard]] std::uint64_t recycled_total() const { return recycled_; }

 private:
  static constexpr std::size_t kChunkSize = 128;

  util::Arena* arena_;
  std::vector<Packet*> chunks_;
  std::vector<Packet*> free_;
  std::size_t chunk_fill_ = kChunkSize;  // next unused index in last chunk
  std::size_t storage_count_ = 0;
  std::uint64_t recycled_ = 0;
};

// Pool teardown (both heap and arena flavours) never runs per-packet
// destructors, so Packet must stay metadata-only.
static_assert(std::is_trivially_destructible_v<Packet>);

/// Returns the packet to its pool; a default-constructed deleter (no pool)
/// falls back to `delete` so detached PacketPtrs stay safe.
struct PacketDeleter {
  std::shared_ptr<PacketPool> pool;
  void operator()(Packet* p) const noexcept {
    if (pool) {
      pool->release(p);
    } else {
      delete p;
    }
  }
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Factory stamping unique ids; one per simulation. Hands out recycled
/// storage from its pool; `created_total()` counts logical packets (every
/// make()), not distinct allocations.
class PacketFactory {
 public:
  /// With an arena, the pool's packet chunks come from it; the arena must
  /// outlive every packet (for a Testbed run: the whole run).
  explicit PacketFactory(util::Arena* arena = nullptr)
      : pool_(std::make_shared<PacketPool>(arena)) {}

  PacketPtr make(FlowId flow, TrafficClass klass, std::int32_t size_bytes,
                 Time now, Header header);

  [[nodiscard]] std::uint64_t created_total() const { return next_uid_ - 1; }
  [[nodiscard]] const PacketPool& pool() const { return *pool_; }

 private:
  std::shared_ptr<PacketPool> pool_;
  std::uint64_t next_uid_ = 1;
};

/// A burst of same-instant packets handed to one sink in a single call.
///
/// The event engine coalesces consecutive same-deadline deliveries bound
/// for the same sink (see DESIGN.md "Event engine v2") and dispatches them
/// as one batch: one virtual call and one cache-warm pass instead of one
/// event per packet.  Entries are owned; handlers must move every one of
/// the first `count` pointers out (or let them die with the batch).
struct alignas(64) PacketBatch {
  static constexpr std::size_t kCapacity = 32;

  std::size_t count = 0;
  std::array<PacketPtr, kCapacity> pkts;
};

// One batch entry is a pooled unique_ptr: raw pointer + shared_ptr deleter.
static_assert(sizeof(PacketPtr) == 24);
static_assert(alignof(PacketBatch) == 64);

/// Anything that can accept a packet (endpoint, link, router port).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void handle_packet(PacketPtr pkt) = 0;

  /// Accept a burst of packets that all arrive at the same instant, in
  /// order.  The default unrolls to handle_packet(); sinks with a cheaper
  /// bulk path (Link enqueue, delivery fan-out) override it.  Overrides
  /// must preserve exact per-packet semantics — the engine guarantees the
  /// batch is exactly the run of events that would otherwise have fired
  /// back-to-back, so looping is always a valid implementation.
  virtual void handle_batch(PacketBatch& batch) {
    for (std::size_t i = 0; i < batch.count; ++i) {
      handle_packet(std::move(batch.pkts[i]));
    }
  }
};

/// Wire overhead constants (Ethernet + IP + transport), matching what a
/// Wireshark capture of the paper's testbed would count.
inline constexpr std::int32_t kIpUdpOverhead = 28;    // IPv4 20 + UDP 8
inline constexpr std::int32_t kIpTcpOverhead = 40;    // IPv4 20 + TCP 20
inline constexpr std::int32_t kTcpMss = 1448;         // payload per segment
inline constexpr std::int32_t kTcpSegmentWire = kTcpMss + kIpTcpOverhead;
inline constexpr std::int32_t kTcpAckWire = kIpTcpOverhead;
inline constexpr std::int32_t kRtpPayload = 1172;     // video bytes per packet
inline constexpr std::int32_t kRtpWire = kRtpPayload + kIpUdpOverhead;  // 1200
inline constexpr std::int32_t kFeedbackWire = 80;
inline constexpr std::int32_t kPingWire = 64;

}  // namespace cgs::net
