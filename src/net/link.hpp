// Point-to-point links.
//
// Link models a store-and-forward interface: a queue discipline in front of
// a serialising transmitter (capacity) followed by propagation delay — the
// `tbf + netem` pair on the paper's Raspberry Pi router.  DelayLine models
// an uncongested path segment: pure delay, no queueing (used for reverse
// paths and the per-flow delay padding that equalises RTTs at 16.5 ms).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "net/sniffer.hpp"
#include "sim/simulator.hpp"

namespace cgs::net {

class Link final : public PacketSink {
 public:
  /// `dst` must outlive the link.
  Link(sim::Simulator& sim, std::string name, Bandwidth rate, Time prop_delay,
       std::unique_ptr<Queue> queue, PacketSink* dst);

  void handle_packet(PacketPtr pkt) override;
  /// Same-instant arrival burst: identical per-packet semantics (arrival
  /// tap, enqueue, transmitter kick) in one cache-warm pass.
  void handle_batch(PacketBatch& batch) override;

  [[nodiscard]] Queue& queue() { return *queue_; }
  [[nodiscard]] const Queue& queue() const { return *queue_; }
  [[nodiscard]] Sniffer& sniffer() { return sniffer_; }
  [[nodiscard]] Bandwidth rate() const { return rate_; }
  [[nodiscard]] Time prop_delay() const { return prop_delay_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_pkts_; }
  [[nodiscard]] ByteSize bytes_delivered() const { return delivered_bytes_; }
  /// Cumulative bytes that arrived at the queue (including later drops) —
  /// the packet-demand signal the fluid capacity-sharing rule differences
  /// per tick.
  [[nodiscard]] ByteSize bytes_arrived() const { return arrived_bytes_; }

  /// Change capacity mid-run (used by capacity-variation scenarios).
  void set_rate(Bandwidth rate) { rate_ = rate; }

  /// Aggregate fluid background load currently served by this link
  /// (hybrid-fidelity fleet layer).  While non-zero, packets serialize at
  /// packet_rate() = rate() - fluid_load(); zero restores the exact legacy
  /// service model, bit for bit.
  void set_fluid_load(Bandwidth load) { fluid_load_ = load; }
  [[nodiscard]] Bandwidth fluid_load() const { return fluid_load_; }
  /// Serialization capacity left for the packet path under the current
  /// fluid load, floored at max(rate/50, 1 kb/s) so full-fidelity flows
  /// are never starved outright by background fluid.
  [[nodiscard]] Bandwidth packet_rate() const {
    const std::int64_t floor_bps =
        std::max<std::int64_t>(rate_.bits_per_sec() / 50, 1000);
    const std::int64_t left = rate_.bits_per_sec() - fluid_load_.bits_per_sec();
    return Bandwidth(std::max(left, floor_bps));
  }

 private:
  /// Receives typed propagation-end events: deliver tap + downstream
  /// forward.  A distinct sink from the Link itself (whose handle_packet
  /// means "arrive at the queue").
  struct DeliveryEnd final : PacketSink {
    explicit DeliveryEnd(Link* link) : link(link) {}
    void handle_packet(PacketPtr pkt) override;
    void handle_batch(PacketBatch& batch) override;
    Link* link;
  };

  /// Receives typed serialisation-end events (the in-flight packet rides
  /// the event itself): frees the transmitter, starts propagation, sends
  /// the next queued packet.  At most one is pending per link, so these
  /// can never coalesce into a batch.
  struct SerDone final : PacketSink {
    explicit SerDone(Link* link) : link(link) {}
    void handle_packet(PacketPtr pkt) override;
    Link* link;
  };

  void try_transmit();

  sim::Simulator& sim_;
  std::string name_;
  Bandwidth rate_;
  Time prop_delay_;
  std::unique_ptr<Queue> queue_;
  PacketSink* dst_;
  Sniffer sniffer_;
  DeliveryEnd delivery_end_{this};
  SerDone ser_done_{this};
  bool busy_ = false;
  std::uint64_t delivered_pkts_ = 0;
  ByteSize delivered_bytes_{0};
  ByteSize arrived_bytes_{0};
  Bandwidth fluid_load_{0};
};

/// Infinite-capacity fixed-delay segment.
class DelayLine final : public PacketSink {
 public:
  /// `dst` must outlive the delay line.
  DelayLine(sim::Simulator& sim, Time delay, PacketSink* dst)
      : sim_(sim), delay_(delay), dst_(dst) {}

  void handle_packet(PacketPtr pkt) override;

  [[nodiscard]] Time delay() const { return delay_; }
  void set_delay(Time delay) { delay_ = delay; }

 private:
  sim::Simulator& sim_;
  Time delay_;
  PacketSink* dst_;
};

}  // namespace cgs::net
