#include "net/sniffer.hpp"

// Header-only today; translation unit kept so the build exposes a stable
// place for future out-of-line additions.
