#include "net/router.hpp"

#include "util/logging.hpp"

namespace cgs::net {

void FlowDemux::register_flow(FlowId flow, PacketSink* sink) {
  routes_[flow] = sink;
}

void FlowDemux::handle_packet(PacketPtr pkt) {
  auto it = routes_.find(pkt->flow);
  if (it == routes_.end()) {
    ++unroutable_;
    CGS_LOG_WARN("FlowDemux: no route for flow ", pkt->flow);
    return;  // drop
  }
  it->second->handle_packet(std::move(pkt));
}

BottleneckRouter::BottleneckRouter(sim::Simulator& sim, Bandwidth capacity,
                                   Time prop_delay,
                                   std::unique_ptr<Queue> queue)
    : sim_(sim),
      link_(std::make_unique<Link>(sim, "bottleneck", capacity, prop_delay,
                                   std::move(queue), &demux_)) {}

PacketSink& BottleneckRouter::make_upstream(Time delay,
                                            PacketSink* server_sink) {
  upstream_.push_back(std::make_unique<DelayLine>(sim_, delay, server_sink));
  return *upstream_.back();
}

}  // namespace cgs::net
