#include "net/router.hpp"

#include <utility>

namespace cgs::net {

BottleneckRouter::BottleneckRouter(sim::Simulator& sim, Bandwidth capacity,
                                   Time prop_delay,
                                   std::unique_ptr<Queue> queue)
    : sim_(&sim),
      link_(std::make_unique<Link>(sim, "bottleneck", capacity, prop_delay,
                                   std::move(queue), &demux_)) {}

BottleneckRouter::BottleneckRouter(TopologyGraph& graph) : graph_(&graph) {
  graph.bottleneck();  // throws std::logic_error on multi-link graphs
}

PacketSink& BottleneckRouter::downstream_in() {
  if (graph_) return graph_->link_entry(0);
  return *link_;
}

void BottleneckRouter::register_client(FlowId flow, PacketSink* sink) {
  if (graph_) {
    graph_->register_client(flow, sink);
    return;
  }
  demux_.register_flow(flow, sink);
}

PacketSink& BottleneckRouter::make_upstream(Time delay,
                                            PacketSink* server_sink) {
  if (graph_) return graph_->make_delay_upstream(delay, server_sink);
  upstream_.push_back(std::make_unique<DelayLine>(*sim_, delay, server_sink));
  return *upstream_.back();
}

Link& BottleneckRouter::bottleneck() {
  if (graph_) return graph_->bottleneck();
  return *link_;
}

const Link& BottleneckRouter::bottleneck() const {
  if (graph_) return std::as_const(*graph_).bottleneck();
  return *link_;
}

}  // namespace cgs::net
