// netem-style path impairment stage.
//
// Impairment is a PacketSink chained in front of any Link/DelayLine — the
// half of the paper's `tc tbf + netem` router that Link does not model:
// random i.i.d. loss, Gilbert–Elliott bursty loss, jitter with optional
// packet reordering, duplication, and scheduled link outages (blackhole or
// hold-and-release).  All randomness is drawn from one seeded Pcg32, so an
// impaired run is still bit-identical across same-seed repeats.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cgs::net {

/// Two-state Markov (Gilbert–Elliott) burst-loss model.  The chain advances
/// once per packet; the stationary bad-state share is
/// p_good_bad / (p_good_bad + p_bad_good), so the long-run loss rate is
/// that share times bad_loss plus the good-state share times good_loss.
struct GilbertElliott {
  double p_good_bad = 0.0;  ///< P(good -> bad) per packet
  double p_bad_good = 1.0;  ///< P(bad -> good) per packet
  double good_loss = 0.0;   ///< drop probability while in the good state
  double bad_loss = 1.0;    ///< drop probability while in the bad state
};

/// What happens to packets arriving while a scheduled outage is active.
enum class OutagePolicy : std::uint8_t {
  kDrop,  ///< blackhole every arrival (a pulled cable)
  kHold,  ///< park arrivals, release them in order when the link comes back
};

[[nodiscard]] std::string_view to_string(OutagePolicy p);

/// One scheduled link outage covering [start, stop).
struct Outage {
  Time start = kTimeZero;
  Time stop = kTimeZero;
  OutagePolicy policy = OutagePolicy::kDrop;
};

/// Declarative impairment description; a default-constructed config is a
/// no-op (Testbed then skips the stage entirely).
struct ImpairmentConfig {
  double loss_rate = 0.0;       ///< i.i.d. drop probability in [0, 1]
  std::optional<GilbertElliott> gilbert_elliott;
  Time jitter = kTimeZero;      ///< extra delay, uniform in [0, jitter)
  bool allow_reorder = false;   ///< false: jittered packets keep FIFO order
  double duplicate_rate = 0.0;  ///< probability a packet is delivered twice
  std::vector<Outage> outages;

  /// True when any impairment is configured.
  [[nodiscard]] bool any() const;

  /// Throws std::invalid_argument naming `where` and the offending field.
  void validate(std::string_view where) const;
};

class Impairment final : public PacketSink {
 public:
  struct Counters {
    std::uint64_t received = 0;        ///< packets entering the stage
    std::uint64_t delivered = 0;       ///< packets forwarded (incl. copies)
    std::uint64_t dropped_random = 0;  ///< i.i.d. + Gilbert–Elliott losses
    std::uint64_t dropped_outage = 0;  ///< losses to a kDrop outage
    std::uint64_t duplicated = 0;      ///< extra copies injected
    std::uint64_t held = 0;            ///< parked by a kHold outage
    std::uint64_t released = 0;        ///< held packets released at outage end
  };

  /// `dst` must outlive the impairment. `config` is validated on entry.
  Impairment(sim::Simulator& sim, PacketFactory& factory, std::string name,
             ImpairmentConfig config, Pcg32 rng, PacketSink* dst);

  void handle_packet(PacketPtr pkt) override;

  /// False while a scheduled outage covers the current simulation time.
  [[nodiscard]] bool link_up() const { return active_outage() == nullptr; }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const ImpairmentConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  [[nodiscard]] const Outage* active_outage() const;
  [[nodiscard]] bool roll_loss();
  /// Loss + duplication roll, then forward.
  void impair_and_forward(PacketPtr pkt);
  /// Apply jitter (and the FIFO-order clamp) and hand the packet to dst_.
  void forward(PacketPtr pkt);
  /// Flush the hold buffer if no outage is active anymore.
  void release_held();

  sim::Simulator& sim_;
  PacketFactory& factory_;
  std::string name_;
  ImpairmentConfig config_;
  Pcg32 rng_;
  PacketSink* dst_;

  bool ge_bad_ = false;            // Gilbert–Elliott chain state
  Time last_release_ = kTimeZero;  // monotone release clock (no-reorder mode)
  std::deque<PacketPtr> held_;
  Counters counters_;
};

}  // namespace cgs::net
