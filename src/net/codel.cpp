#include "net/codel.hpp"

#include <cmath>

namespace cgs::net {

// ---------------------------------------------------------------- CoDel ----

void CodelQueue::enqueue(PacketPtr pkt, Time now) {
  if (bytes_ + pkt->size() > params_.capacity) {
    report_drop(*pkt, DropReason::kOverflow, now);
    return;
  }
  pkt->enqueued = now;
  bytes_ += pkt->size();
  q_.push_back(std::move(pkt));
}

PacketPtr CodelQueue::pop_head() {
  if (q_.empty()) return nullptr;
  PacketPtr pkt = q_.pop_front();
  bytes_ -= pkt->size();
  return pkt;
}

Time CodelQueue::control_law(Time t) const {
  return t + Time(std::int64_t(double(params_.interval.count()) /
                               std::sqrt(double(count_))));
}

bool CodelQueue::should_drop(const Packet& pkt, Time now) {
  const Time sojourn = now - pkt.enqueued;
  if (sojourn < params_.target || bytes_ < ByteSize(1514)) {
    first_above_time_ = kTimeZero;
    return false;
  }
  if (first_above_time_ == kTimeZero) {
    first_above_time_ = now + params_.interval;
    return false;
  }
  return now >= first_above_time_;
}

PacketPtr CodelQueue::dequeue(Time now) {
  PacketPtr pkt = pop_head();
  if (!pkt) {
    dropping_ = false;
    return nullptr;
  }

  if (dropping_) {
    if (!should_drop(*pkt, now)) {
      dropping_ = false;
      return pkt;
    }
    while (now >= drop_next_ && dropping_) {
      report_drop(*pkt, DropReason::kAqmMark, now);
      ++count_;
      pkt = pop_head();
      if (!pkt) {
        dropping_ = false;
        return nullptr;
      }
      if (!should_drop(*pkt, now)) {
        dropping_ = false;
        return pkt;
      }
      drop_next_ = control_law(drop_next_);
    }
    return pkt;
  }

  if (should_drop(*pkt, now)) {
    report_drop(*pkt, DropReason::kAqmMark, now);
    pkt = pop_head();
    dropping_ = true;
    // RFC 8289: restart from a count related to the last drop episode if it
    // was recent, to resume at roughly the prior drop rate.
    if (count_ > 2 && now - drop_next_ < 8 * params_.interval) {
      count_ = count_ - 2;
    } else {
      count_ = 1;
    }
    last_count_ = count_;
    drop_next_ = control_law(now);
  }
  return pkt;
}

// ------------------------------------------------------------- FQ-CoDel ----

FqCodelQueue::SubQueue& FqCodelQueue::sub(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    it = flows_.emplace(flow, SubQueue(params_)).first;
    // Forward sub-queue drops (from CoDel) to our handler and keep the
    // aggregate byte/packet accounting consistent.
    it->second.codel.set_drop_handler(
        [this](const Packet& p, DropReason r, Time t) {
          if (!in_enqueue_) {
            bytes_ -= p.size();
            --count_;
          }
          report_drop(p, r, t);
        });
  }
  return it->second;
}

void FqCodelQueue::enqueue(PacketPtr pkt, Time now) {
  const FlowId flow = pkt->flow;
  SubQueue& s = sub(flow);
  const ByteSize sz = pkt->size();
  const std::size_t before = s.codel.packet_count();
  in_enqueue_ = true;
  s.codel.enqueue(std::move(pkt), now);
  in_enqueue_ = false;
  if (s.codel.packet_count() == before) return;  // overflowed inside CoDel
  bytes_ += sz;
  ++count_;
  if (!s.active) {
    s.active = true;
    s.deficit = quantum_.bytes();
    new_flows_.push_back(flow);
  }
}

PacketPtr FqCodelQueue::dequeue(Time now) {
  for (int guard = 0; guard < 1'000'000; ++guard) {
    cgs::util::RingBuffer<FlowId>* list = nullptr;
    if (!new_flows_.empty()) {
      list = &new_flows_;
    } else if (!old_flows_.empty()) {
      list = &old_flows_;
    } else {
      return nullptr;
    }

    const FlowId flow = list->front();
    SubQueue& s = sub(flow);

    if (s.deficit <= 0) {
      s.deficit += quantum_.bytes();
      (void)list->pop_front();
      old_flows_.push_back(flow);
      continue;
    }

    PacketPtr pkt = s.codel.dequeue(now);
    if (!pkt) {
      // Empty: a new flow that empties is recycled to old once (RFC 8290);
      // an old flow that empties goes inactive.
      (void)list->pop_front();
      if (list == &new_flows_) {
        old_flows_.push_back(flow);
      } else {
        s.active = false;
      }
      continue;
    }
    bytes_ -= pkt->size();
    --count_;
    s.deficit -= pkt->size().bytes();
    return pkt;
  }
  return nullptr;
}

}  // namespace cgs::net
